// Gray-failure tests (DESIGN.md §16): slowdown/corruption schedules are
// deterministic, a 10x-slowed slave is flagged and its streamlines
// speculatively re-issued with bit-identical terminal results, and
// silent payload corruption is always caught by the checksum and retried
// without changing any trajectory.

#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/driver.hpp"
#include "algorithms/hybrid.hpp"
#include "fault/injector.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

void expect_same_particles(const std::vector<Particle>& a,
                           const std::vector<Particle>& b,
                           const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " i=" << i;
    EXPECT_EQ(a[i].status, b[i].status) << label << " i=" << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.x, b[i].pos.x) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.y, b[i].pos.y) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.z, b[i].pos.z) << label << " i=" << i;
    EXPECT_EQ(a[i].time, b[i].time) << label << " i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Injector determinism: same seed => same gray schedule, event for event.

TEST(GrayInjector, SlowdownScheduleIsDeterministic) {
  FaultConfig cfg;
  cfg.gray_mtbf = 0.3;
  cfg.max_slowdowns = 3;
  cfg.gray_slow_factor = 7.0;
  cfg.rng_seed = 77;
  const FaultInjector a(cfg, 16);
  const FaultInjector b(cfg, 16);
  ASSERT_EQ(a.slowdown_schedule().size(), b.slowdown_schedule().size());
  ASSERT_FALSE(a.slowdown_schedule().empty());
  ASSERT_LE(a.slowdown_schedule().size(), 3u);
  for (std::size_t i = 0; i < a.slowdown_schedule().size(); ++i) {
    EXPECT_EQ(a.slowdown_schedule()[i].rank, b.slowdown_schedule()[i].rank);
    EXPECT_EQ(a.slowdown_schedule()[i].time, b.slowdown_schedule()[i].time);
    EXPECT_EQ(a.slowdown_schedule()[i].factor, 7.0);
    if (i > 0) {
      EXPECT_GE(a.slowdown_schedule()[i].time,
                a.slowdown_schedule()[i - 1].time);
    }
  }
}

TEST(GrayInjector, EachRankSlowsAtMostOnceAndImmuneRanksNever) {
  FaultConfig cfg;
  cfg.gray_mtbf = 0.01;  // would draw far more slowdowns than ranks
  cfg.max_slowdowns = 100;
  cfg.immune_ranks = {0};
  const FaultInjector inj(cfg, 6);
  std::vector<int> seen;
  for (const SlowdownEvent& e : inj.slowdown_schedule()) {
    EXPECT_NE(e.rank, 0);
    EXPECT_GE(e.rank, 0);
    EXPECT_LT(e.rank, 6);
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), e.rank) == seen.end())
        << "rank " << e.rank << " slowed twice";
    seen.push_back(e.rank);
  }
  EXPECT_FALSE(inj.slowdown_schedule().empty());
}

TEST(GrayInjector, GrayDrawStreamsAreDeterministicAndIndependent) {
  FaultConfig cfg;
  cfg.disk_slow_rate = 0.3;
  cfg.corrupt_rate = 0.3;
  FaultInjector a(cfg, 4);
  FaultInjector b(cfg, 4);
  int slows = 0;
  int flips = 0;
  for (int i = 0; i < 500; ++i) {
    const bool sa = a.draw_disk_slow();
    const bool ca = a.draw_disk_corrupt();
    EXPECT_EQ(sa, b.draw_disk_slow());
    EXPECT_EQ(ca, b.draw_disk_corrupt());
    slows += sa ? 1 : 0;
    flips += ca ? 1 : 0;
  }
  EXPECT_GT(slows, 0);
  EXPECT_LT(slows, 500);
  EXPECT_GT(flips, 0);
  EXPECT_LT(flips, 500);
}

// ---------------------------------------------------------------------------
// End-to-end gray runs.  A bigger seed pool than FaultWorld keeps every
// slave busy long enough for progress windows to close.

struct GrayWorld {
  sf::testing::TestWorld w = sf::testing::abc_world(2);
  std::vector<Vec3> seeds;

  GrayWorld() {
    Rng rng(321);
    seeds = random_seeds(w.dataset->bounds(), 200, rng);
  }

  ExperimentConfig config(Algorithm algo, int ranks) const {
    auto cfg = test_config(algo, ranks);
    cfg.limits.max_steps = 600;
    cfg.limits.max_time = 10.0;
    return cfg;
  }

  RunMetrics run(const ExperimentConfig& cfg) const {
    return run_experiment(cfg, w.decomp(), *w.source, seeds);
  }
};

// Same seed => the whole gray run replays bit-for-bit: wall clock,
// counters and trajectories.
TEST(GrayFailure, RepeatGrayRunsAreDeterministic) {
  const GrayWorld gw;
  auto cfg = gw.config(Algorithm::kHybridMasterSlave, 9);
  cfg.runtime.fault.gray_mtbf = 0.05;
  cfg.runtime.fault.max_slowdowns = 2;
  cfg.runtime.fault.corrupt_rate = 0.05;
  cfg.runtime.fault.disk_slow_rate = 0.05;
  const RunMetrics a = gw.run(cfg);
  const RunMetrics b = gw.run(cfg);
  EXPECT_EQ(a.wall_clock, b.wall_clock);
  EXPECT_EQ(a.total_steps(), b.total_steps());
  EXPECT_EQ(a.fault.slowdowns_injected, b.fault.slowdowns_injected);
  EXPECT_EQ(a.fault.disk_slow_events, b.fault.disk_slow_events);
  EXPECT_EQ(a.fault.corruptions_injected, b.fault.corruptions_injected);
  EXPECT_EQ(a.fault.corruptions_detected, b.fault.corruptions_detected);
  EXPECT_EQ(a.fault.stragglers_flagged, b.fault.stragglers_flagged);
  EXPECT_EQ(a.fault.particles_speculated, b.fault.particles_speculated);
  expect_same_particles(a.particles, b.particles, "gray-repeat");
}

// The golden straggler test: one slave runs 10x slow from early in the
// run.  The master must flag it from its busy-second compute speed,
// speculatively re-issue its ledger-owned streamlines, and the terminal
// particle set must match the fault-free oracle bit for bit
// (first-terminal-wins dedup in the ledger).
TEST(GrayFailure, HybridStragglerIsFlaggedAndResultsAreBitIdentical) {
  const GrayWorld gw;
  const int ranks = 9;  // 1 master + 8 slaves; rank 5 is a plain slave

  const RunMetrics clean = gw.run(gw.config(Algorithm::kHybridMasterSlave,
                                            ranks));
  ASSERT_FALSE(clean.failed_oom);
  ASSERT_GT(clean.wall_clock, 0.0);

  auto cfg = gw.config(Algorithm::kHybridMasterSlave, ranks);
  cfg.runtime.fault.slowdowns = {{0.1 * clean.wall_clock, 5, 10.0}};
  // Shrink the heartbeat so several progress windows close within the
  // (short) test run; the detector needs straggler_min_beats of them.
  cfg.runtime.fault.heartbeat_period =
      std::max(1e-4, 0.02 * clean.wall_clock);
  const RunMetrics m = gw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_EQ(m.fault.slowdowns_injected, 1u);
  EXPECT_GE(m.fault.stragglers_flagged, 1u);
  EXPECT_GT(m.fault.particles_speculated, 0u);
  EXPECT_GT(m.fault.straggler_detect_latency, 0.0);
  expect_same_particles(clean.particles, m.particles, "straggler-vs-clean");
}

// Under static allocation there is no master to mitigate — a slowdown
// may cost wall-clock time but must never change a trajectory.
TEST(GrayFailure, StaticSlowdownIsSlowNotWrong) {
  const GrayWorld gw;
  const RunMetrics clean =
      gw.run(gw.config(Algorithm::kStaticAllocation, 8));
  ASSERT_FALSE(clean.failed_oom);

  auto cfg = gw.config(Algorithm::kStaticAllocation, 8);
  cfg.runtime.fault.slowdowns = {{0.1 * clean.wall_clock, 5, 10.0}};
  const RunMetrics m = gw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.fault.slowdowns_injected, 1u);
  EXPECT_GE(m.wall_clock, clean.wall_clock);
  expect_same_particles(clean.particles, m.particles, "static-slow-vs-clean");
}

// Silent payload corruption: the checksum catches every injected flip,
// the read retries, and no trajectory changes — on all three algorithms.
class CorruptionRecovery : public ::testing::TestWithParam<Algorithm> {};

TEST_P(CorruptionRecovery, AllFlipsDetectedAndResultsUnchanged) {
  const Algorithm algo = GetParam();
  const GrayWorld gw;
  const RunMetrics clean = gw.run(gw.config(algo, 8));
  ASSERT_FALSE(clean.failed_oom);

  auto cfg = gw.config(algo, 8);
  cfg.runtime.fault.corrupt_rate = 0.3;  // test-scale reads need a high rate
  const RunMetrics m = gw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_GT(m.fault.corruptions_injected, 0u);
  EXPECT_EQ(m.fault.corruptions_detected, m.fault.corruptions_injected);
  expect_same_particles(clean.particles, m.particles, "corrupt-vs-clean");
  EXPECT_GE(m.wall_clock, clean.wall_clock);  // retries cost time
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CorruptionRecovery,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case Algorithm::kStaticAllocation:
                               return "Static";
                             case Algorithm::kLoadOnDemand: return "Lod";
                             default: return "Hybrid";
                           }
                         });

// Disk-latency inflation is pure slowness: no retry consumed, no
// trajectory changed, wall clock not faster.
TEST(GrayFailure, DiskSlownessCostsTimeNotCorrectness) {
  const GrayWorld gw;
  const RunMetrics clean = gw.run(gw.config(Algorithm::kLoadOnDemand, 8));

  auto cfg = gw.config(Algorithm::kLoadOnDemand, 8);
  cfg.runtime.fault.disk_slow_rate = 0.3;
  const RunMetrics m = gw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  EXPECT_GT(m.fault.disk_slow_events, 0u);
  EXPECT_EQ(m.fault.disk_faults, 0u);  // slowness is not failure
  expect_same_particles(clean.particles, m.particles, "disk-slow-vs-clean");
  EXPECT_GT(m.wall_clock, clean.wall_clock);
}

}  // namespace
}  // namespace sf
