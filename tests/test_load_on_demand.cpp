#include "algorithms/load_on_demand.hpp"

#include <gtest/gtest.h>

#include "algorithms/driver.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

TEST(PartitionEvenly, ChunksAreBalancedAndBlockSorted) {
  auto w = sf::testing::rotor_world(2);
  std::vector<Particle> particles;
  Rng rng(3);
  const AABB b = w.dataset->bounds();
  for (int i = 0; i < 103; ++i) {
    Particle p;
    p.id = static_cast<std::uint32_t>(i);
    p.pos = {rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y),
             rng.uniform(b.lo.z, b.hi.z)};
    particles.push_back(p);
  }
  const auto parts =
      partition_evenly_by_block(4, w.decomp(), std::move(particles));
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  for (const auto& chunk : parts) {
    EXPECT_GE(chunk.size(), 25u);
    EXPECT_LE(chunk.size(), 26u);
    total += chunk.size();
    // Within a chunk, seeds are grouped (non-decreasing block id).
    for (std::size_t i = 1; i < chunk.size(); ++i) {
      EXPECT_LE(w.decomp().block_of(chunk[i - 1].pos),
                w.decomp().block_of(chunk[i].pos));
    }
  }
  EXPECT_EQ(total, 103u);
}

TEST(LoadOnDemand, AllParticlesTerminateWithZeroCommunication) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(7);
  const auto seeds = random_seeds(w.dataset->bounds(), 40, rng);
  const auto cfg = test_config(Algorithm::kLoadOnDemand, 4);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  ASSERT_EQ(m.particles.size(), seeds.size());
  for (const Particle& p : m.particles) EXPECT_TRUE(is_terminal(p.status));
  // §4.2: no communication at all.
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_DOUBLE_EQ(m.total_comm_time(), 0.0);
}

TEST(LoadOnDemand, RedundantLoadsAcrossRanks) {
  // Every rank traces orbits through the same 8 blocks: total loads must
  // exceed the block count (the algorithm's signature weakness).
  auto w = sf::testing::rotor_world(2);
  std::vector<Vec3> seeds;
  for (int i = 0; i < 8; ++i) {
    seeds.push_back({1.0 + 0.02 * i, 0.0, 0.1});
  }
  auto cfg = test_config(Algorithm::kLoadOnDemand, 4);
  cfg.limits.max_time = 7.0;  // a full orbit through all quadrants
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_GT(m.total_blocks_loaded(),
            static_cast<std::uint64_t>(w.decomp().num_blocks()));
  EXPECT_GT(m.total_io_time(), 0.0);
}

TEST(LoadOnDemand, TinyCacheForcesReloadsAndLowersEfficiency) {
  auto w = sf::testing::rotor_world(2);
  std::vector<Vec3> seeds{{1.0, 0.0, 0.1}};
  auto big = test_config(Algorithm::kLoadOnDemand, 1);
  big.runtime.cache_blocks = 16;
  big.limits.max_time = 13.0;  // two orbits
  auto small = big;
  small.runtime.cache_blocks = 1;

  const RunMetrics m_big = run_experiment(big, w.decomp(), *w.source, seeds);
  const RunMetrics m_small =
      run_experiment(small, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m_big.failed_oom);
  ASSERT_FALSE(m_small.failed_oom);
  // With room for the whole orbit the second revolution is free; with a
  // 1-block cache every crossing reloads.
  EXPECT_GT(m_small.total_blocks_loaded(), m_big.total_blocks_loaded());
  EXPECT_LT(m_small.block_efficiency(), m_big.block_efficiency());
  EXPECT_GT(m_small.total_io_time(), m_big.total_io_time());
  // Identical trajectories regardless of cache pressure.
  ASSERT_EQ(m_big.particles.size(), m_small.particles.size());
  EXPECT_EQ(m_big.particles[0].steps, m_small.particles[0].steps);
  EXPECT_EQ(m_big.particles[0].pos.x, m_small.particles[0].pos.x);
}

TEST(LoadOnDemand, RanksFinishIndependently) {
  // One rank gets a long orbit, others get nothing: the others' programs
  // finish immediately; the run still completes.
  auto w = sf::testing::rotor_world(2);
  const std::vector<Vec3> seeds{{1.0, 0.0, 0.1}};
  const auto cfg = test_config(Algorithm::kLoadOnDemand, 4);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.particles.size(), 1u);
  int ranks_with_work = 0;
  for (const auto& r : m.ranks) {
    if (r.steps > 0) ++ranks_with_work;
  }
  EXPECT_EQ(ranks_with_work, 1);
}

TEST(LoadOnDemand, EmptySeedSet) {
  auto w = sf::testing::rotor_world(2);
  const auto cfg = test_config(Algorithm::kLoadOnDemand, 3);
  const RunMetrics m =
      run_experiment(cfg, w.decomp(), *w.source, std::span<const Vec3>{});
  EXPECT_FALSE(m.failed_oom);
  EXPECT_TRUE(m.particles.empty());
  EXPECT_EQ(m.total_blocks_loaded(), 0u);
}

}  // namespace
}  // namespace sf
