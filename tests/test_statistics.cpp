#include "analysis/statistics.hpp"

#include <gtest/gtest.h>

#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "core/tracer.hpp"

namespace sf {
namespace {

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1, 1, 4), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, EmptyQuantileIsLow) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(Statistics, SummarizeAggregates) {
  std::vector<Particle> ps(3);
  ps[0].steps = 10;
  ps[0].time = 1.0;
  ps[0].geometry_points = 11;
  ps[0].status = ParticleStatus::kExitedDomain;
  ps[1].steps = 20;
  ps[1].time = 3.0;
  ps[1].geometry_points = 21;
  ps[1].status = ParticleStatus::kMaxTime;
  ps[2].steps = 30;
  ps[2].time = 2.0;
  ps[2].geometry_points = 31;
  ps[2].status = ParticleStatus::kMaxTime;

  const StreamlineStats s = summarize(ps);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean_steps, 20.0);
  EXPECT_EQ(s.max_steps, 30u);
  EXPECT_DOUBLE_EQ(s.mean_time, 2.0);
  EXPECT_DOUBLE_EQ(s.max_time, 3.0);
  EXPECT_DOUBLE_EQ(s.mean_geometry_points, 21.0);
  EXPECT_EQ(s.total_geometry_bytes, 63u * sizeof(Vec3));
  EXPECT_EQ(s.by_status[static_cast<int>(ParticleStatus::kMaxTime)], 2u);
  EXPECT_EQ(s.by_status[static_cast<int>(ParticleStatus::kExitedDomain)],
            1u);
}

TEST(Statistics, SummarizeEmpty) {
  const StreamlineStats s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_steps, 0.0);
}

TEST(Statistics, PolylineLength) {
  const std::vector<Vec3> line{{0, 0, 0}, {3, 0, 0}, {3, 4, 0}};
  EXPECT_DOUBLE_EQ(polyline_length(line), 7.0);
  EXPECT_DOUBLE_EQ(polyline_length(std::span<const Vec3>{}), 0.0);
}

TEST(Statistics, LengthHistogramOverTracedLines) {
  // Circular orbits of radius r have length ~ 2*pi*r per revolution:
  // seeds at different radii give distinguishable length bins.
  const RotorField field;
  IntegratorParams ip;
  TraceLimits lim;
  lim.max_time = 6.283185307179586;  // one revolution each
  lim.max_steps = 100000;
  const std::vector<Vec3> seeds{{0.5, 0, 0}, {1.0, 0, 0}, {1.5, 0, 0}};
  PolylineRecorder rec(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    trace_field(field, seeds[i], ip, lim, &rec,
                static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    // Polylines are chords of the circle: slightly shorter than the arc.
    const double arc =
        6.283185307179586 * (0.5 + 0.5 * static_cast<double>(i));
    EXPECT_LE(polyline_length(rec.lines()[i]), arc + 1e-9);
    EXPECT_NEAR(polyline_length(rec.lines()[i]), arc, 0.005 * arc);
  }
  const Histogram h = length_histogram(rec.lines(), 8);
  EXPECT_EQ(h.total(), 3u);
  // Longest orbit defines the top bin.
  EXPECT_EQ(h.count(7), 1u);
}

}  // namespace
}  // namespace sf
