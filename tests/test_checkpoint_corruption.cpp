// Corrupted checkpoint files must be rejected by the FNV-1a checksum (or
// the structural checks around it) with a clear error — never
// deserialized into garbage particles.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "io/checkpoint_io.hpp"

namespace sf {
namespace {

namespace fs = std::filesystem;

Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.sim_time = 12.5;
  ck.num_ranks = 3;
  for (std::uint32_t i = 0; i < 8; ++i) {
    Particle p;
    p.id = i;
    p.pos = {0.25 * i, 0.5, 0.75};
    p.time = 0.1 * i;
    p.h = 0.01;
    p.steps = 10 * i;
    p.geometry_points = i + 1;
    if (i < 3) {
      p.status = ParticleStatus::kMaxTime;
      ck.done.push_back(p);
    } else {
      ck.active.push_back(p);
      ck.active_owner.push_back(static_cast<int>(i) % 3);
    }
  }
  for (int r = 0; r < 3; ++r) {
    CheckpointRankState rs;
    rs.rank = r;
    rs.alive = r != 1;
    rs.resident = {r, r + 3};
    ck.ranks.push_back(rs);
  }
  return ck;
}

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs the fixture's tests as separate
    // processes in parallel, and a shared directory lets one test's
    // TearDown remove another's checkpoint mid-read.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("sf_ckpt_corruption_") + info->name());
    fs::create_directories(dir_);
    path_ = dir_ / "ck.bin";
    write_checkpoint(path_, sample_checkpoint());
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::vector<char> slurp() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void dump(const std::vector<char>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // The error message read_checkpoint throws for the current file.
  std::string read_error() const {
    try {
      (void)read_checkpoint(path_);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    ADD_FAILURE() << "expected read_checkpoint to throw";
    return {};
  }

  fs::path dir_;
  fs::path path_;
};

TEST_F(CheckpointCorruptionTest, RoundTripBaseline) {
  const Checkpoint ck = read_checkpoint(path_);
  EXPECT_EQ(ck.sim_time, 12.5);
  EXPECT_EQ(ck.num_ranks, 3);
  EXPECT_EQ(ck.done.size(), 3u);
  EXPECT_EQ(ck.active.size(), 5u);
  EXPECT_EQ(ck.ranks.size(), 3u);
}

TEST_F(CheckpointCorruptionTest, TruncatedPayloadRejected) {
  std::vector<char> bytes = slurp();
  ASSERT_GT(bytes.size(), 64u);
  bytes.resize(bytes.size() - 33);  // chop the tail off the payload
  dump(bytes);
  const std::string err = read_error();
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST_F(CheckpointCorruptionTest, TruncatedHeaderRejected) {
  std::vector<char> bytes = slurp();
  bytes.resize(12);  // not even a full header survives
  dump(bytes);
  // A half-header reads as a failed/bad magic; either way it must be a
  // clear checkpoint error, not garbage data.
  const std::string err = read_error();
  EXPECT_NE(err.find("checkpoint:"), std::string::npos) << err;
}

TEST_F(CheckpointCorruptionTest, BitFlippedPayloadRejected) {
  // Flip a single bit in every byte position across the payload region,
  // one file at a time, and require the checksum to catch each one.
  const std::vector<char> pristine = slurp();
  ASSERT_GT(pristine.size(), 64u);
  // Header = 8-byte magic + sizes/checksum; flip well inside the payload.
  for (std::size_t pos = 32; pos < pristine.size(); pos += 97) {
    std::vector<char> bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
    dump(bytes);
    const std::string err = read_error();
    EXPECT_NE(err.find("checksum mismatch"), std::string::npos)
        << "flip at byte " << pos << ": " << err;
  }
}

TEST_F(CheckpointCorruptionTest, BitFlippedMagicRejected) {
  std::vector<char> bytes = slurp();
  bytes[0] = static_cast<char>(bytes[0] ^ 0x01);
  dump(bytes);
  const std::string err = read_error();
  EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
}

TEST_F(CheckpointCorruptionTest, TrailingGarbageRejected) {
  std::vector<char> bytes = slurp();
  bytes.push_back('\0');
  bytes.push_back('!');
  dump(bytes);
  const std::string err = read_error();
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST_F(CheckpointCorruptionTest, MissingFileRejected) {
  fs::remove(path_);
  EXPECT_THROW((void)read_checkpoint(path_), std::runtime_error);
}

}  // namespace
}  // namespace sf
