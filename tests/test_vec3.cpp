#include "core/vec3.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sf {
namespace {

TEST(Vec3, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(Vec3(2, 4, 6) / 2.0, Vec3(1, 2, 3));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= {1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
  v /= 3.0;
  EXPECT_EQ(v, Vec3(1, 2, 3));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(dot(x, y), 0.0);
  EXPECT_EQ(dot(Vec3(1, 2, 3), Vec3(4, 5, 6)), 32.0);
  EXPECT_EQ(cross(x, y), z);
  EXPECT_EQ(cross(y, z), x);
  EXPECT_EQ(cross(z, x), y);
  // Anti-commutativity.
  EXPECT_EQ(cross(y, x), -z);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3 a{1.3, -2.7, 0.5}, b{0.2, 4.4, -1.9};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3, NormAndNormalize) {
  EXPECT_DOUBLE_EQ(norm(Vec3(3, 4, 0)), 5.0);
  EXPECT_DOUBLE_EQ(norm2(Vec3(3, 4, 0)), 25.0);
  const Vec3 n = normalized(Vec3(0, 0, 7));
  EXPECT_EQ(n, Vec3(0, 0, 1));
  // Zero vector normalizes to zero rather than NaN.
  EXPECT_EQ(normalized(Vec3{}), Vec3{});
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec3(1, 1, 1), Vec3(1, 1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(distance(Vec3(0, 0, 0), Vec3(0, 3, 4)), 5.0);
}

TEST(Vec3, MinMax) {
  const Vec3 a{1, 5, 3}, b{2, 4, 3};
  EXPECT_EQ(min(a, b), Vec3(1, 4, 3));
  EXPECT_EQ(max(a, b), Vec3(2, 5, 3));
}

TEST(Vec3, Indexing) {
  Vec3 v{7, 8, 9};
  EXPECT_EQ(v[0], 7.0);
  EXPECT_EQ(v[1], 8.0);
  EXPECT_EQ(v[2], 9.0);
  v[1] = -1.0;
  EXPECT_EQ(v.y, -1.0);
}

TEST(Vec3, Streaming) {
  std::ostringstream os;
  os << Vec3{1, 2, 3};
  EXPECT_EQ(os.str(), "(1, 2, 3)");
}

}  // namespace
}  // namespace sf
