// Miniature versions of the paper's §5 experiments: we check the
// *qualitative shape* of the results (who does more I/O, who communicates
// more, whose block efficiency is ideal) on small configurations that run
// in milliseconds.  The full-size reproductions live in bench/fig_*.

#include <gtest/gtest.h>

#include "algorithms/driver.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::make_world;
using sf::testing::test_config;

// A world where I/O is expensive (paper-scale 12 MB blocks).
sf::testing::TestWorld costly_world(FieldPtr field) {
  return make_world(std::move(field), 4, 9, 2, /*modelled_bytes=*/12u << 20);
}

ExperimentConfig shape_config(Algorithm algo, int ranks) {
  auto cfg = test_config(algo, ranks);
  cfg.runtime.model = MachineModel::jaguar_like();
  cfg.runtime.model.particle_memory_bytes = 1ull << 30;
  cfg.runtime.cache_blocks = 12;
  cfg.limits.max_steps = 800;
  cfg.limits.max_time = 30.0;
  cfg.hybrid.slaves_per_master = 8;
  return cfg;
}

TEST(ExperimentShapes, SparseSeeding_LodDoesFarMoreIoThanStatic) {
  auto w = costly_world(std::make_shared<SupernovaField>());
  Rng rng(1);
  const auto seeds = random_seeds(w.dataset->bounds(), 256, rng);

  const RunMetrics st = run_experiment(
      shape_config(Algorithm::kStaticAllocation, 16), w.decomp(), *w.source,
      seeds);
  const RunMetrics lod = run_experiment(
      shape_config(Algorithm::kLoadOnDemand, 16), w.decomp(), *w.source,
      seeds);
  ASSERT_FALSE(st.failed_oom);
  ASSERT_FALSE(lod.failed_oom);

  // Figure 6: Load On Demand spends an order of magnitude more in I/O.
  EXPECT_GT(lod.total_io_time(), 3.0 * st.total_io_time());
  EXPECT_GT(lod.total_blocks_loaded(), st.total_blocks_loaded());
  // Figure 7: Static is ideal (each block loaded at most once, nothing
  // purged).
  EXPECT_DOUBLE_EQ(st.block_efficiency(), 1.0);
  // And no communication at all for Load On Demand (Figure 8 note).
  EXPECT_EQ(lod.total_messages(), 0u);
}

TEST(ExperimentShapes, DenseSeeding_StaticCommunicatesFarMoreThanHybrid) {
  auto w = costly_world(std::make_shared<SupernovaField>());
  Rng rng(2);
  // Seed densely inside the rotation core: the differential rotation
  // carries every line through all four quadrant owners over and over,
  // so Static keeps shipping geometry-laden particles between owners.
  const auto seeds =
      cluster_seeds({0.3, 0.0, 0.0}, 0.05, 600, rng, w.dataset->bounds());

  auto cfg_st = shape_config(Algorithm::kStaticAllocation, 8);
  cfg_st.limits.max_steps = 2000;
  auto cfg_hy = shape_config(Algorithm::kHybridMasterSlave, 8);
  cfg_hy.limits.max_steps = 2000;
  const RunMetrics st =
      run_experiment(cfg_st, w.decomp(), *w.source, seeds);
  const RunMetrics hy =
      run_experiment(cfg_hy, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(st.failed_oom);
  ASSERT_FALSE(hy.failed_oom);

  // Figure 8 (dense): Static ships every streamline (with geometry) to
  // block owners; Hybrid mostly ships compact control traffic.
  EXPECT_GT(st.total_bytes_sent(), 2.0 * hy.total_bytes_sent());
}

TEST(ExperimentShapes, Fusion_LodCompetitiveWhenWorkingSetFitsCache) {
  // §5.2: dense fusion seeds orbit within a working set that fits in
  // memory, so Load On Demand stops paying I/O after warm-up.
  auto w = costly_world(std::make_shared<TokamakField>());
  const TokamakField& tok =
      static_cast<const TokamakField&>(*w.field);
  Rng rng(3);
  const auto seeds = cluster_seeds({tok.params().major_radius, 0.0, 0.0},
                                   0.08, 150, rng, w.dataset->bounds());

  auto cfg = shape_config(Algorithm::kLoadOnDemand, 8);
  cfg.runtime.cache_blocks = 48;  // the orbit's working set fits
  const RunMetrics lod = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(lod.failed_oom);
  // Orbiting lines revisit blocks: efficiency stays high because the
  // working set is cached, not because blocks are read once per rank.
  EXPECT_GT(lod.block_efficiency(), 0.5);
}

TEST(ExperimentShapes, ThermalDense_StaticOomsWhileOthersComplete) {
  // Figure 13: 22k seeds around one inlet kill Static Allocation; Load
  // On Demand (and Hybrid) complete.  Scaled to 300 seeds and a small
  // memory budget with identical structure.
  auto w = costly_world(std::make_shared<ThermalHydraulicsField>());
  const ThermalHydraulicsField& th =
      static_cast<const ThermalHydraulicsField&>(*w.field);
  const auto seeds = circle_seeds(
      th.params().inlet1 + Vec3{0.02, 0, 0}, {1, 0, 0}, 0.05, 300);

  auto cfg = shape_config(Algorithm::kStaticAllocation, 8);
  cfg.runtime.model.particle_memory_bytes = 4u << 20;
  const RunMetrics st = run_experiment(cfg, w.decomp(), *w.source, seeds);
  EXPECT_TRUE(st.failed_oom);

  cfg.algorithm = Algorithm::kLoadOnDemand;
  const RunMetrics lod = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(lod.failed_oom);
  EXPECT_EQ(lod.particles.size(), seeds.size());

  cfg.algorithm = Algorithm::kHybridMasterSlave;
  cfg.runtime.model.particle_memory_bytes = 64u << 20;  // seed pool fits
  const RunMetrics hy = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(hy.failed_oom);
  EXPECT_EQ(hy.particles.size(), seeds.size());
}

TEST(ExperimentShapes, ThermalDense_LittleDataTouched) {
  // "very little data needs to be read off disk" for inlet seeding: the
  // streamlines touch a small fraction of the 64 blocks.
  auto w = costly_world(std::make_shared<ThermalHydraulicsField>());
  const ThermalHydraulicsField& th =
      static_cast<const ThermalHydraulicsField&>(*w.field);
  const auto seeds = circle_seeds(
      th.params().inlet1 + Vec3{0.02, 0, 0}, {1, 0, 0}, 0.05, 100);

  auto cfg = shape_config(Algorithm::kLoadOnDemand, 4);
  cfg.limits.max_steps = 300;  // "integrated a short distance"
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_LT(m.total_blocks_loaded(),
            static_cast<std::uint64_t>(w.decomp().num_blocks()));
}

TEST(ExperimentShapes, GeometryStrippingCutsCommBytes) {
  // §8: communicating solver state only (no trajectory geometry) slashes
  // Static Allocation's communication volume.
  auto w = costly_world(std::make_shared<SupernovaField>());
  Rng rng(4);
  const auto seeds = random_seeds(w.dataset->bounds(), 100, rng);

  auto with_geom = shape_config(Algorithm::kStaticAllocation, 8);
  with_geom.runtime.carry_geometry = true;
  auto without = with_geom;
  without.runtime.carry_geometry = false;

  const RunMetrics g = run_experiment(with_geom, w.decomp(), *w.source, seeds);
  const RunMetrics s = run_experiment(without, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(g.failed_oom);
  ASSERT_FALSE(s.failed_oom);
  // Far fewer bytes for nearly the same message traffic.  Counts are not
  // exactly equal: bursts advance a whole block queue and group their
  // hand-offs per destination, so transfer times (which geometry bytes
  // change) shift which particles share a burst and thus a batch.
  EXPECT_NEAR(static_cast<double>(g.total_messages()),
              static_cast<double>(s.total_messages()),
              0.05 * static_cast<double>(s.total_messages()));
  EXPECT_GT(g.total_bytes_sent(), 3.0 * s.total_bytes_sent());
  // And identical results, of course.
  ASSERT_EQ(g.particles.size(), s.particles.size());
  for (std::size_t i = 0; i < g.particles.size(); ++i) {
    EXPECT_EQ(g.particles[i].steps, s.particles[i].steps);
  }
}

}  // namespace
}  // namespace sf
