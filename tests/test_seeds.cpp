#include "core/seeds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sf {
namespace {

const AABB kBox{{0, 0, 0}, {1, 1, 1}};

TEST(Seeds, UniformGridCountAndContainment) {
  const auto seeds = uniform_grid_seeds(kBox, 4, 3, 2);
  EXPECT_EQ(seeds.size(), 24u);
  for (const Vec3& s : seeds) EXPECT_TRUE(kBox.contains(s));
}

TEST(Seeds, UniformGridCellCentered) {
  const auto seeds = uniform_grid_seeds(kBox, 2, 2, 2);
  // First seed at the centre of the first octant cell.
  EXPECT_EQ(seeds.front(), Vec3(0.25, 0.25, 0.25));
  EXPECT_EQ(seeds.back(), Vec3(0.75, 0.75, 0.75));
}

TEST(Seeds, UniformGridRejectsZeroCounts) {
  EXPECT_THROW(uniform_grid_seeds(kBox, 0, 1, 1), std::invalid_argument);
}

TEST(Seeds, RandomSeedsAreInsideAndDeterministic) {
  Rng r1(5), r2(5);
  const auto a = random_seeds(kBox, 500, r1);
  const auto b = random_seeds(kBox, 500, r2);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(kBox.contains(a[i]));
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Seeds, ClusterSeedsConcentrateAroundCenter) {
  Rng rng(11);
  const Vec3 c{0.5, 0.5, 0.5};
  const auto seeds = cluster_seeds(c, 0.05, 1000, rng, kBox);
  ASSERT_EQ(seeds.size(), 1000u);
  double mean_dist = 0.0;
  for (const Vec3& s : seeds) {
    EXPECT_TRUE(kBox.contains(s));
    mean_dist += distance(s, c);
  }
  mean_dist /= 1000.0;
  // Mean radius of an isotropic 3D gaussian is sigma*sqrt(8/pi) ~ 1.6 s.
  EXPECT_LT(mean_dist, 0.12);
}

TEST(Seeds, ClusterSeedsClampedToBox) {
  Rng rng(13);
  // Center on a corner: roughly 7/8 of raw draws fall outside and clamp.
  const auto seeds = cluster_seeds({0, 0, 0}, 0.2, 200, rng, kBox);
  for (const Vec3& s : seeds) EXPECT_TRUE(kBox.contains(s));
}

TEST(Seeds, CircleSeedsLieOnCircle) {
  const Vec3 center{0.5, 0.5, 0.5};
  const Vec3 normal{1, 0, 0};
  const auto seeds = circle_seeds(center, normal, 0.2, 64);
  ASSERT_EQ(seeds.size(), 64u);
  for (const Vec3& s : seeds) {
    EXPECT_NEAR(distance(s, center), 0.2, 1e-12);
    EXPECT_NEAR(dot(s - center, normal), 0.0, 1e-12);
  }
}

TEST(Seeds, CircleSeedsDistinct) {
  const auto seeds = circle_seeds({0, 0, 0}, {0, 0, 1}, 1.0, 8);
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    EXPECT_GT(distance(seeds[i], seeds[i - 1]), 0.1);
  }
}

TEST(Seeds, CircleSeedsHandleAxisAlignedNormals) {
  for (const Vec3& n : {Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}}) {
    const auto seeds = circle_seeds({0, 0, 0}, n, 1.0, 16);
    for (const Vec3& s : seeds) EXPECT_NEAR(norm(s), 1.0, 1e-12);
  }
}

TEST(Seeds, LineSeedsEndpoints) {
  const auto seeds = line_seeds({0, 0, 0}, {1, 2, 3}, 5);
  ASSERT_EQ(seeds.size(), 5u);
  EXPECT_EQ(seeds.front(), Vec3(0, 0, 0));
  EXPECT_EQ(seeds.back(), Vec3(1, 2, 3));
  EXPECT_EQ(seeds[2], Vec3(0.5, 1, 1.5));
}

TEST(Seeds, LineSeedsSingleIsMidpoint) {
  const auto seeds = line_seeds({0, 0, 0}, {2, 0, 0}, 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds.front(), Vec3(1, 0, 0));
}

}  // namespace
}  // namespace sf
