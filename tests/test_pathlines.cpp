#include "analysis/pathlines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

TEST(Pathlines, SteadyFieldPathlineEqualsStreamline) {
  auto rotor = std::make_shared<RotorField>();
  const SteadyAsTimeField field(rotor);
  IntegratorParams prm;
  prm.tol = 1e-10;
  const double half_turn = 3.14159265358979323846;
  const PathlineResult r =
      trace_pathline(field, {1, 0, 0}, 0.0, half_turn, prm);
  EXPECT_EQ(r.particle.status, ParticleStatus::kMaxTime);
  EXPECT_LT(distance(r.particle.pos, {-1, 0, 0}), 1e-5);
  EXPECT_EQ(r.path.size(), r.times.size());
  EXPECT_EQ(r.path.front(), Vec3(1, 0, 0));
}

TEST(Pathlines, BackwardIntegrationInvertsForward) {
  const DoubleGyreField field;
  IntegratorParams prm;
  prm.tol = 1e-10;
  const Vec3 start{0.7, 0.4, 0.0};
  const Vec3 fwd = advect(field, start, 0.0, 5.0, prm);
  const Vec3 back = advect(field, fwd, 5.0, 0.0, prm);
  EXPECT_LT(distance(back, start), 1e-5);
}

TEST(Pathlines, UnsteadyFieldDiffersFromFrozenField) {
  // In the double gyre, a pathline (time-varying) and the streamline of
  // the t = 0 snapshot diverge — the defining property of unsteadiness.
  const DoubleGyreField gyre;
  IntegratorParams prm;
  prm.tol = 1e-9;
  const Vec3 seed{1.2, 0.35, 0.0};
  const Vec3 pathline_end = advect(gyre, seed, 0.0, 6.0, prm);

  // Frozen snapshot at t = 0.
  class Frozen final : public VectorField {
   public:
    explicit Frozen(const DoubleGyreField* f) : f_(f) {}
    bool sample(const Vec3& p, Vec3& out) const override {
      return f_->sample(p, 0.0, out);
    }
    AABB bounds() const override { return f_->bounds(); }
    const DoubleGyreField* f_;
  };
  const Frozen frozen(&gyre);
  const SteadyAsTimeField steady(
      FieldPtr(&frozen, [](const VectorField*) {}));
  const Vec3 streamline_end = advect(steady, seed, 0.0, 6.0, prm);
  EXPECT_GT(distance(pathline_end, streamline_end), 1e-3);
}

TEST(Pathlines, ExitsDomain) {
  const SteadyAsTimeField field(
      std::make_shared<UniformField>(Vec3{1, 0, 0},
                                     AABB{{0, -1, -1}, {1, 1, 1}}));
  IntegratorParams prm;
  const PathlineResult r =
      trace_pathline(field, {0.5, 0, 0}, 0.0, 100.0, prm);
  EXPECT_EQ(r.particle.status, ParticleStatus::kExitedDomain);
  EXPECT_GT(r.particle.pos.x, 0.9);
}

TEST(Pathlines, SeedOutsideDomain) {
  const SteadyAsTimeField field(std::make_shared<RotorField>());
  const PathlineResult r =
      trace_pathline(field, {99, 0, 0}, 0.0, 1.0, IntegratorParams{});
  EXPECT_EQ(r.particle.status, ParticleStatus::kExitedDomain);
  EXPECT_EQ(r.path.size(), 1u);
}

TEST(Pathlines, TimeSliceInterpolationIsLinear) {
  // Two uniform slices: v = (1,0,0) at t=0 and v = (3,0,0) at t=1.
  const AABB box{{0, 0, 0}, {10, 1, 1}};
  auto f0 = std::make_shared<UniformField>(Vec3{1, 0, 0}, box);
  auto f1 = std::make_shared<UniformField>(Vec3{3, 0, 0}, box);
  const BlockDecomposition d(box, 2, 1, 1);
  auto ds0 = std::make_shared<BlockedDataset>(f0, d, 5, 1);
  auto ds1 = std::make_shared<BlockedDataset>(f1, d, 5, 1);
  const TimeSliceField field({ds0, ds1}, {0.0, 1.0});

  Vec3 v;
  ASSERT_TRUE(field.sample({5, 0.5, 0.5}, 0.5, v));
  EXPECT_NEAR(v.x, 2.0, 1e-9);
  ASSERT_TRUE(field.sample({5, 0.5, 0.5}, 0.25, v));
  EXPECT_NEAR(v.x, 1.5, 1e-9);
  EXPECT_FALSE(field.sample({5, 0.5, 0.5}, 1.5, v));
  EXPECT_FALSE(field.sample({5, 0.5, 0.5}, -0.5, v));

  // Pathline through the accelerating field: x(t) advances by
  // integral of (1 + 2t) = t + t^2; from x=1, t:0->1 lands at x=3.
  IntegratorParams prm;
  prm.tol = 1e-10;
  prm.h_max = 0.05;
  const Vec3 end = advect(field, {1, 0.5, 0.5}, 0.0, 1.0, prm);
  EXPECT_NEAR(end.x, 3.0, 1e-3);
}

TEST(Pathlines, TimeSliceValidation) {
  const AABB box{{0, 0, 0}, {1, 1, 1}};
  auto f = std::make_shared<UniformField>(Vec3{1, 0, 0}, box);
  const BlockDecomposition d(box, 1, 1, 1);
  auto ds = std::make_shared<BlockedDataset>(f, d, 5, 1);
  EXPECT_THROW(TimeSliceField({ds}, {0.0}), std::invalid_argument);
  EXPECT_THROW(TimeSliceField({ds, ds}, {1.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace sf
