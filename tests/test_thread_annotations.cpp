// The lock-order registry and the annotated synchronization primitives
// (src/core/thread_annotations.hpp).  The compile-time half — Clang
// thread-safety attributes — is exercised by the `static-analysis` CI
// job; these tests cover the runtime half: the Debug per-thread
// held-rank stack that turns an out-of-order acquisition into an
// immediate std::logic_error instead of a latent deadlock.

#include "core/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace sf {
namespace {

TEST(LockRankRegistry, InOrderNestingIsAllowed) {
  Mutex low(LockRank::kQueryBoard);
  Mutex high(LockRank::kLoader);
  MutexLock a(low);
  MutexLock b(high);  // strictly increasing rank: fine
  SUCCEED();
}

TEST(LockRankRegistry, OutOfOrderAcquisitionThrows) {
#if SF_CHECK_INVARIANTS
  Mutex low(LockRank::kQueryBoard);
  Mutex high(LockRank::kLoader);
  MutexLock a(high);
  EXPECT_THROW(MutexLock b(low), std::logic_error);
#else
  GTEST_SKIP() << "rank checking compiles out without SF_CHECK_INVARIANTS";
#endif
}

TEST(LockRankRegistry, SameRankNestingThrows) {
#if SF_CHECK_INVARIANTS
  // Two mutexes of equal rank can never nest (no tie-break exists that
  // every thread would agree on), so equal rank counts as a violation.
  Mutex a(LockRank::kMailbox);
  Mutex b(LockRank::kMailbox);
  MutexLock la(a);
  EXPECT_THROW(MutexLock lb(b), std::logic_error);
#else
  GTEST_SKIP() << "rank checking compiles out without SF_CHECK_INVARIANTS";
#endif
}

TEST(LockRankRegistry, UnrankedMutexIsExempt) {
  // kUnranked opts out (tests / fixtures only): nesting under a held
  // ranked mutex must not throw.
  Mutex ranked(LockRank::kLoader);
  Mutex unranked;
  MutexLock a(ranked);
  MutexLock b(unranked);
  SUCCEED();
}

TEST(LockRankRegistry, ReleaseUnwindsTheHeldStack) {
  // After a ranked lock is released, a lower rank is acquirable again.
  Mutex low(LockRank::kQueryBoard);
  Mutex high(LockRank::kLoader);
  {
    MutexLock a(high);
  }
  MutexLock b(low);
  SUCCEED();
}

TEST(LockRankRegistry, HeldStackIsPerThread) {
#if SF_CHECK_INVARIANTS
  // A rank held on this thread must not poison acquisitions on another.
  Mutex high(LockRank::kDataset);
  Mutex low(LockRank::kCancelSet);
  MutexLock a(high);
  std::atomic<bool> ok{false};
  std::thread t([&] {
    MutexLock b(low);  // would throw if the stack were global
    ok.store(true);
  });
  t.join();
  EXPECT_TRUE(ok.load());
#else
  GTEST_SKIP() << "rank checking compiles out without SF_CHECK_INVARIANTS";
#endif
}

TEST(LockRankRegistry, TryLockSkipsTheOrderCheck) {
  // try_lock cannot deadlock (it never blocks), so it is exempt from
  // the rank check — but a successful try_lock still records the rank.
  Mutex high(LockRank::kLoader);
  Mutex low(LockRank::kQueryBoard);
  MutexLock a(high);
  ASSERT_TRUE(low.try_lock());
  low.unlock();
}

TEST(CondVarTest, WaitForTimesOutWithLockHeld) {
  Mutex mu(LockRank::kMailbox);
  CondVar cv;
  MutexLock lock(mu);
  const auto status = cv.wait_for(mu, std::chrono::milliseconds(1));
  EXPECT_EQ(status, std::cv_status::timeout);
  // The lock is still held and still tracked: releasing it (via the
  // MutexLock dtor) and re-acquiring must work.
}

TEST(CondVarTest, NotifyWakesAWaiter) {
  Mutex mu(LockRank::kMailbox);
  CondVar cv;
  bool flag = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    flag = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!flag) {
      // Bounded wait keeps a lost wakeup from hanging the suite.
      cv.wait_for(mu, std::chrono::milliseconds(50));
    }
    EXPECT_TRUE(flag);
  }
  waker.join();
}

TEST(ThreadCheckerTest, AssertHeldIsANoOp) {
  // The capability token has no runtime state; this pins the contract
  // that it stays free to "acquire" anywhere.
  ThreadChecker checker;
  checker.assert_held();
  SUCCEED();
}

}  // namespace
}  // namespace sf
