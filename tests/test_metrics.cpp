#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

RunMetrics two_rank_metrics() {
  RunMetrics m;
  m.num_ranks = 2;
  m.ranks.resize(2);
  m.ranks[0].io_time = 1.0;
  m.ranks[0].comm_time = 0.5;
  m.ranks[0].compute_time = 2.0;
  m.ranks[0].blocks_loaded = 10;
  m.ranks[0].blocks_purged = 2;
  m.ranks[0].bytes_read = 100;
  m.ranks[0].messages_sent = 3;
  m.ranks[0].bytes_sent = 300;
  m.ranks[0].steps = 1000;
  m.ranks[1].io_time = 0.25;
  m.ranks[1].blocks_loaded = 6;
  m.ranks[1].blocks_purged = 0;
  m.ranks[1].steps = 500;
  return m;
}

TEST(RunMetrics, TotalsSumOverRanks) {
  const RunMetrics m = two_rank_metrics();
  EXPECT_DOUBLE_EQ(m.total_io_time(), 1.25);
  EXPECT_DOUBLE_EQ(m.total_comm_time(), 0.5);
  EXPECT_DOUBLE_EQ(m.total_compute_time(), 2.0);
  EXPECT_EQ(m.total_blocks_loaded(), 16u);
  EXPECT_EQ(m.total_blocks_purged(), 2u);
  EXPECT_EQ(m.total_bytes_read(), 100u);
  EXPECT_EQ(m.total_messages(), 3u);
  EXPECT_EQ(m.total_bytes_sent(), 300u);
  EXPECT_EQ(m.total_steps(), 1500u);
}

TEST(RunMetrics, BlockEfficiencyEquation2) {
  const RunMetrics m = two_rank_metrics();
  // E = (16 - 2) / 16.
  EXPECT_DOUBLE_EQ(m.block_efficiency(), 14.0 / 16.0);
}

TEST(RunMetrics, BlockEfficiencyDefinedWithNoLoads) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.block_efficiency(), 1.0);
}

TEST(RunMetrics, UtilizationMeanAndImbalance) {
  RunMetrics m;
  m.wall_clock = 10.0;
  m.ranks.resize(4);
  m.ranks[0].compute_time = 10.0;  // one rank does everything
  EXPECT_DOUBLE_EQ(m.mean_utilization(), 0.25);
  EXPECT_DOUBLE_EQ(m.utilization_imbalance(), 0.75);

  for (auto& r : m.ranks) r.compute_time = 5.0;  // perfectly balanced
  EXPECT_DOUBLE_EQ(m.mean_utilization(), 0.5);
  EXPECT_DOUBLE_EQ(m.utilization_imbalance(), 0.0);
}

TEST(RunMetrics, UtilizationDefinedOnEmptyRun) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.mean_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(m.utilization_imbalance(), 0.0);
}

TEST(RunMetrics, IdealStaticProfileHasEfficiencyOne) {
  RunMetrics m;
  m.ranks.resize(4);
  for (auto& r : m.ranks) {
    r.blocks_loaded = 8;
    r.blocks_purged = 0;
  }
  EXPECT_DOUBLE_EQ(m.block_efficiency(), 1.0);
}

}  // namespace
}  // namespace sf
