// Stress and failure-injection tests: adversarial cache sizes, extreme
// heuristic settings, degenerate decompositions, and corrupted inputs.
// The algorithms must stay live and correct (or fail loudly) in every
// corner.

#include <gtest/gtest.h>

#include "algorithms/driver.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

// Every algorithm must terminate with a single-block cache — maximal
// thrashing, zero room for a working set.
class OneBlockCache : public ::testing::TestWithParam<Algorithm> {};

TEST_P(OneBlockCache, CompletesAndMatches) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(3);
  const auto seeds = random_seeds(w.dataset->bounds(), 12, rng);
  auto cfg = test_config(GetParam(), 4);
  cfg.runtime.cache_blocks = 1;
  cfg.limits.max_steps = 300;
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  ASSERT_EQ(m.particles.size(), seeds.size());
  const auto serial = trace_all(*w.dataset, seeds, cfg.integrator,
                                cfg.limits);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(m.particles[i].steps, serial[i].steps) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, OneBlockCache,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave));

// Hybrid liveness under extreme heuristics.
struct HybridKnobs {
  int n, overload, nl, w;
};

class HybridExtremes : public ::testing::TestWithParam<HybridKnobs> {};

TEST_P(HybridExtremes, StaysLive) {
  const auto [n, overload, nl, wpm] = GetParam();
  auto w = sf::testing::rotor_world(2);
  Rng rng(5);
  const auto seeds = random_seeds(w.dataset->bounds(), 30, rng);
  auto cfg = test_config(Algorithm::kHybridMasterSlave, 6);
  cfg.hybrid.assign_batch = n;
  cfg.hybrid.overload_factor = overload;
  cfg.hybrid.load_threshold = nl;
  cfg.hybrid.slaves_per_master = wpm;
  cfg.limits.max_steps = 300;
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.particles.size(), seeds.size());
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, HybridExtremes,
    ::testing::Values(HybridKnobs{1, 1, 1, 1},     // minimal everything
                      HybridKnobs{1, 1000, 1, 1},  // no overload limit
                      HybridKnobs{50, 2, 1000, 2}, // never load, only migrate
                      HybridKnobs{10, 20, 1, 64},  // load eagerly, one group
                      HybridKnobs{3, 5, 7, 3}));

TEST(Stress, SingleBlockDecomposition) {
  // One block, many ranks: all work lands on the block's owner (static)
  // or gets replicated (others); everything still terminates.
  auto field = std::make_shared<RotorField>();
  const BlockDecomposition decomp(field->bounds(), 1, 1, 1);
  auto ds = std::make_shared<BlockedDataset>(field, decomp, 17, 2);
  DatasetBlockSource source(ds);
  Rng rng(7);
  const auto seeds = random_seeds(ds->bounds(), 20, rng);
  for (const auto algo :
       {Algorithm::kStaticAllocation, Algorithm::kLoadOnDemand,
        Algorithm::kHybridMasterSlave}) {
    auto cfg = test_config(algo, 5);
    cfg.limits.max_steps = 200;
    const RunMetrics m = run_experiment(cfg, decomp, source, seeds);
    ASSERT_FALSE(m.failed_oom) << to_string(algo);
    EXPECT_EQ(m.particles.size(), seeds.size()) << to_string(algo);
  }
}

TEST(Stress, ManyMoreRanksThanParticles) {
  auto w = sf::testing::rotor_world(2);
  const std::vector<Vec3> seeds{{1, 0, 0}, {0.5, 0.5, 0.1}};
  for (const auto algo :
       {Algorithm::kStaticAllocation, Algorithm::kLoadOnDemand,
        Algorithm::kHybridMasterSlave}) {
    auto cfg = test_config(algo, 24);
    cfg.limits.max_steps = 200;
    const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
    ASSERT_FALSE(m.failed_oom) << to_string(algo);
    EXPECT_EQ(m.particles.size(), 2u) << to_string(algo);
  }
}

TEST(Stress, AllSeedsOutsideDomain) {
  auto w = sf::testing::rotor_world(2);
  std::vector<Vec3> seeds(10, Vec3{50, 50, 50});
  for (const auto algo :
       {Algorithm::kStaticAllocation, Algorithm::kLoadOnDemand,
        Algorithm::kHybridMasterSlave}) {
    const auto cfg = test_config(algo, 4);
    const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
    ASSERT_FALSE(m.failed_oom);
    ASSERT_EQ(m.particles.size(), 10u);
    for (const Particle& p : m.particles) {
      EXPECT_EQ(p.status, ParticleStatus::kExitedDomain);
    }
    // Nothing was ever loaded or computed.
    EXPECT_EQ(m.total_blocks_loaded(), 0u);
    EXPECT_EQ(m.total_steps(), 0u);
  }
}

TEST(Stress, ZeroStepBudgetTerminatesImmediately) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(11);
  const auto seeds = random_seeds(w.dataset->bounds(), 8, rng);
  auto cfg = test_config(Algorithm::kHybridMasterSlave, 4);
  cfg.limits.max_steps = 0;
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  for (const Particle& p : m.particles) {
    EXPECT_EQ(p.status, ParticleStatus::kMaxSteps);
    EXPECT_EQ(p.steps, 0u);
  }
}

TEST(Stress, UtilizationReflectsStaticImbalance) {
  // Dense cluster on one owner: static's busiest rank dwarfs the mean.
  auto w = sf::testing::rotor_world(2);
  Rng rng(13);
  const auto seeds =
      cluster_seeds({1.0, 1.0, 1.0}, 0.05, 60, rng, w.dataset->bounds());
  auto cfg = test_config(Algorithm::kStaticAllocation, 8);
  cfg.limits.max_steps = 500;
  const RunMetrics st = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(st.failed_oom);
  EXPECT_GT(st.utilization_imbalance(), st.mean_utilization());
}

}  // namespace
}  // namespace sf
