#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(123);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(77);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, Splitmix64KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  // Regression anchors: splitmix64 from seed 0.
  EXPECT_EQ(a, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(b, 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace sf
