#include "core/analytic_fields.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/integrator.hpp"
#include "core/rng.hpp"
#include "core/tracer.hpp"

namespace sf {
namespace {

// Central-difference divergence of a field.
double divergence(const VectorField& f, const Vec3& p, double h = 1e-5) {
  Vec3 xp, xm, yp, ym, zp, zm;
  EXPECT_TRUE(f.sample(p + Vec3{h, 0, 0}, xp));
  EXPECT_TRUE(f.sample(p - Vec3{h, 0, 0}, xm));
  EXPECT_TRUE(f.sample(p + Vec3{0, h, 0}, yp));
  EXPECT_TRUE(f.sample(p - Vec3{0, h, 0}, ym));
  EXPECT_TRUE(f.sample(p + Vec3{0, 0, h}, zp));
  EXPECT_TRUE(f.sample(p - Vec3{0, 0, h}, zm));
  return (xp.x - xm.x + yp.y - ym.y + zp.z - zm.z) / (2 * h);
}

TEST(UniformField, ConstantInsideFailsOutside) {
  const UniformField f({1, 2, 3});
  Vec3 v;
  ASSERT_TRUE(f.sample({0, 0, 0}, v));
  EXPECT_EQ(v, Vec3(1, 2, 3));
  EXPECT_FALSE(f.sample({5, 0, 0}, v));
}

TEST(RotorField, VelocityPerpendicularToRadius) {
  const RotorField f({0, 0, 0}, {0, 0, 2});
  Vec3 v;
  ASSERT_TRUE(f.sample({1, 0, 0}, v));
  EXPECT_EQ(v, Vec3(0, 2, 0));
  ASSERT_TRUE(f.sample({0, 1, 0}, v));
  EXPECT_EQ(v, Vec3(-2, 0, 0));
}

TEST(SaddleField, MatchesLinearForm) {
  const SaddleField f(2.0);
  Vec3 v;
  ASSERT_TRUE(f.sample({1.5, -0.5, 0.2}, v));
  EXPECT_DOUBLE_EQ(v.x, 3.0);
  EXPECT_DOUBLE_EQ(v.y, 1.0);
  EXPECT_DOUBLE_EQ(v.z, 0.0);
}

TEST(ABCField, DivergenceFree) {
  const ABCField f;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Vec3 p{rng.uniform(0.5, 5.5), rng.uniform(0.5, 5.5),
                 rng.uniform(0.5, 5.5)};
    EXPECT_NEAR(divergence(f, p), 0.0, 1e-6) << "at " << p;
  }
}

TEST(SupernovaField, TurbulenceIsDivergenceFree) {
  // The turbulent component is a curl, hence exactly solenoidal; check
  // the numerical divergence of the full field minus the radial part is
  // small by checking the exposed turbulence() directly.
  const SupernovaField f;
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    const Vec3 p{rng.uniform(-0.8, 0.8), rng.uniform(-0.8, 0.8),
                 rng.uniform(-0.8, 0.8)};
    const double h = 1e-5;
    const double div =
        (f.turbulence(p + Vec3{h, 0, 0}).x - f.turbulence(p - Vec3{h, 0, 0}).x +
         f.turbulence(p + Vec3{0, h, 0}).y - f.turbulence(p - Vec3{0, h, 0}).y +
         f.turbulence(p + Vec3{0, 0, h}).z -
         f.turbulence(p - Vec3{0, 0, h}).z) /
        (2 * h);
    EXPECT_NEAR(div, 0.0, 1e-4) << "at " << p;
  }
}

TEST(SupernovaField, ShockShellAttracts) {
  SupernovaParams prm;
  prm.turbulence_strength = 0.0;  // isolate shock + rotation
  const SupernovaField f(prm);
  Vec3 v;
  // Inside the shell the field sweeps outward toward it...
  const Vec3 inside{prm.shock_radius - prm.shock_width, 0, 0};
  ASSERT_TRUE(f.sample(inside, v));
  EXPECT_GT(dot(v, inside), 0.0);
  // ...just beyond it the attraction still pulls back in (lines are
  // trapped near the shell)...
  const Vec3 near_out{prm.shock_radius + prm.shock_width, 0, 0};
  ASSERT_TRUE(f.sample(near_out, v));
  EXPECT_LT(dot(v, near_out), 0.0);
  // ...while far outside (reachable toward the domain corners) the weak
  // ejecta leak wins and lines escape through the boundary.
  const Vec3 far_out{0.8, 0.8, 0.8};  // r ~ 1.39, well past the shell
  ASSERT_TRUE(f.sample(far_out, v));
  EXPECT_GT(dot(v, far_out), 0.0);
}

TEST(SupernovaField, DifferentialRotationMatchesProfile) {
  SupernovaParams prm;
  prm.turbulence_strength = 0.0;
  const SupernovaField f(prm);
  const Vec3 p{0.05, 0, 0};
  Vec3 v;
  ASSERT_TRUE(f.sample(p, v));
  // With turbulence off, the azimuthal component is exactly
  // omega(r_c) * r_c with omega = strength * s^2 / (s^2 + r_c^2).
  const double fall = prm.rotation_falloff * prm.rotation_falloff;
  const double omega =
      prm.rotation_strength * fall / (fall + p.x * p.x);
  EXPECT_NEAR(v.y, omega * p.x, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(SupernovaField, DeterministicAcrossInstances) {
  const SupernovaField a, b;
  Vec3 va, vb;
  const Vec3 p{0.3, -0.2, 0.6};
  ASSERT_TRUE(a.sample(p, va));
  ASSERT_TRUE(b.sample(p, vb));
  EXPECT_EQ(va, vb);
}

TEST(TokamakField, ToroidalMagnitudeFallsAsOneOverR) {
  TokamakParams prm;
  prm.island_amplitude = 0.0;
  const TokamakField f(prm);
  Vec3 v_in, v_out;
  ASSERT_TRUE(f.sample({0.8, 0, 0}, v_in));
  ASSERT_TRUE(f.sample({1.2, 0, 0}, v_out));
  // B_phi ~ R0/R: closer in is stronger.
  EXPECT_GT(std::abs(v_in.y), std::abs(v_out.y));
  EXPECT_NEAR(std::abs(v_in.y) * 0.8, std::abs(v_out.y) * 1.2, 0.05);
}

TEST(TokamakField, FieldIsToroidalOnAxisCircle) {
  TokamakParams prm;
  prm.island_amplitude = 0.0;
  const TokamakField f(prm);
  // On the magnetic axis (r = 0) the poloidal component vanishes.
  Vec3 v;
  ASSERT_TRUE(f.sample({1.0, 0, 0}, v));
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
  EXPECT_NEAR(std::abs(v.y), prm.b0, 1e-12);
}

TEST(TokamakField, UndefinedOnTorusAxis) {
  const TokamakField f;
  Vec3 v;
  EXPECT_FALSE(f.sample({0, 0, 0}, v));
}

TEST(ThermalHydraulicsField, JetStrongestAtInletMouth) {
  const ThermalHydraulicsField f;
  const auto& prm = f.params();
  Vec3 at_inlet, far_away;
  ASSERT_TRUE(f.sample({0.01, prm.inlet1.y, prm.inlet1.z}, at_inlet));
  ASSERT_TRUE(f.sample({0.9, prm.inlet1.y, prm.inlet1.z}, far_away));
  EXPECT_GT(at_inlet.x, 2.0);
  // Far from the inlet only the (weaker) recirculation contributes.
  EXPECT_GT(at_inlet.x, 2.0 * std::abs(far_away.x));
}

TEST(ThermalHydraulicsField, OutletAttracts) {
  ThermalHydraulicsParams prm;
  prm.jet_strength = 0.0;
  prm.recirculation_strength = 0.0;
  const ThermalHydraulicsField f(prm);
  const Vec3 p{0.7, 0.7, 0.7};
  Vec3 v;
  ASSERT_TRUE(f.sample(p, v));
  // Velocity points toward the outlet.
  EXPECT_GT(dot(v, prm.outlet - p), 0.0);
}

TEST(ThermalHydraulicsField, RecirculationHasClosedCells) {
  ThermalHydraulicsParams prm;
  prm.jet_strength = 0.0;
  prm.outlet_strength = 0.0;
  const ThermalHydraulicsField f(prm);
  // At the centre of a recirculation cell the in-plane velocity vanishes.
  Vec3 v;
  ASSERT_TRUE(f.sample({0.25, 0.5, 0.25}, v));
  EXPECT_NEAR(v.x, 0.0, 1e-9);
  EXPECT_NEAR(v.z, 0.0, 1e-9);
}

TEST(HillVortex, VelocityContinuousAtBoundary) {
  const HillVortexField f(0.6, 1.0);
  for (const double frac : {0.3, 0.7, 0.95}) {
    // A point on the vortex sphere, just inside vs just outside.
    const double z = 0.6 * frac;
    const double rho = std::sqrt(0.36 - z * z);
    Vec3 vin, vout;
    const double eps = 1e-7;
    ASSERT_TRUE(f.sample({rho * (1 - eps), 0, z * (1 - eps)}, vin));
    ASSERT_TRUE(f.sample({rho * (1 + eps), 0, z * (1 + eps)}, vout));
    EXPECT_NEAR(vin.x, vout.x, 1e-5);
    EXPECT_NEAR(vin.z, vout.z, 1e-5);
  }
}

TEST(HillVortex, StreamfunctionContinuousAndZeroOnSphere) {
  const HillVortexField f(0.6, 1.0);
  EXPECT_NEAR(f.streamfunction({0.6, 0, 0}), 0.0, 1e-12);
  EXPECT_NEAR(f.streamfunction({0, 0.36, 0.48}), 0.0, 1e-12);
}

TEST(HillVortex, DivergenceFree) {
  const HillVortexField f;
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const Vec3 p{rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2),
                 rng.uniform(-1.2, 1.2)};
    if (std::abs(norm(p) - 0.6) < 0.05) continue;  // skip the interface
    EXPECT_NEAR(divergence(f, p), 0.0, 1e-5) << "at " << p;
  }
}

TEST(HillVortex, StreamfunctionConservedAlongStreamlines) {
  // The exact invariant: psi is constant along every streamline.  This
  // exercises integrator + field together at tight tolerance.
  const HillVortexField f(0.6, 1.0);
  IntegratorParams prm;
  prm.tol = 1e-10;
  for (const Vec3 seed : {Vec3{0.25, 0, 0.1}, Vec3{0.4, 0.1, -0.2},
                          Vec3{0.9, 0, 0.3}}) {
    const double psi0 = f.streamfunction(seed);
    Vec3 p = seed;
    double t = 0.0, h = prm.h_init;
    double worst = 0.0;
    for (int s = 0; s < 600; ++s) {
      const StepResult r = dopri5_step(f, p, t, h, prm);
      if (r.status != StepStatus::kOk) break;
      p = r.p;
      t = r.t;
      h = r.h_next;
      worst = std::max(worst, std::abs(f.streamfunction(p) - psi0));
    }
    EXPECT_LT(worst, 1e-6) << "seed " << seed;
  }
}

TEST(HillVortex, InteriorStreamlinesCloseOnThemselves) {
  const HillVortexField f(0.6, 1.0);
  IntegratorParams prm;
  prm.tol = 1e-10;
  TraceLimits lim;
  lim.max_steps = 200000;
  lim.max_time = 1e9;
  lim.min_speed = 1e-10;
  // Trace an interior loop and find the closest return to the seed
  // after leaving its neighbourhood.
  const Vec3 seed{0.3, 0.0, 0.0};
  Vec3 p = seed;
  double t = 0.0, h = prm.h_init;
  double best_return = 1e300;
  bool left = false;
  for (int s = 0; s < 5000; ++s) {
    const StepResult r = dopri5_step(f, p, t, h, prm);
    ASSERT_EQ(r.status, StepStatus::kOk);
    p = r.p;
    t = r.t;
    h = r.h_next;
    const double d = distance(p, seed);
    if (d > 0.1) left = true;
    if (left) best_return = std::min(best_return, d);
    if (left && d < 1e-3) break;
  }
  EXPECT_TRUE(left);
  EXPECT_LT(best_return, 5e-3);
}

TEST(AllApplicationFields, SampleEverywhereInsideBounds) {
  const SupernovaField sn;
  const TokamakField tk;
  const ThermalHydraulicsField th;
  Rng rng(99);
  for (const VectorField* f :
       std::initializer_list<const VectorField*>{&sn, &th}) {
    const AABB b = f->bounds();
    for (int i = 0; i < 200; ++i) {
      const Vec3 p{rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y),
                   rng.uniform(b.lo.z, b.hi.z)};
      Vec3 v;
      EXPECT_TRUE(f->sample(p, v)) << "at " << p;
      EXPECT_TRUE(std::isfinite(v.x) && std::isfinite(v.y) &&
                  std::isfinite(v.z));
    }
  }
  // Tokamak: defined everywhere except the z axis.
  const AABB b = tk.bounds();
  for (int i = 0; i < 200; ++i) {
    const Vec3 p{rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y),
                 rng.uniform(b.lo.z, b.hi.z)};
    if (std::hypot(p.x, p.y) < 1e-6) continue;
    Vec3 v;
    EXPECT_TRUE(tk.sample(p, v));
    EXPECT_TRUE(std::isfinite(v.x) && std::isfinite(v.y) &&
                std::isfinite(v.z));
  }
}

}  // namespace
}  // namespace sf
