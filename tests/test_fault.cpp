// Fault-injection, checkpoint and recovery tests (DESIGN.md §7): the
// injector is deterministic, checkpoints round-trip bit-for-bit, and all
// three algorithms survive injected crashes / disk faults / message drops
// with the *same* final particle set as a fault-free run.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "algorithms/driver.hpp"
#include "algorithms/hybrid.hpp"
#include "algorithms/load_on_demand.hpp"
#include "algorithms/static_alloc.hpp"
#include "fault/injector.hpp"
#include "io/checkpoint_io.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

void expect_same_particles(const std::vector<Particle>& a,
                           const std::vector<Particle>& b,
                           const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " i=" << i;
    EXPECT_EQ(a[i].status, b[i].status) << label << " i=" << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.x, b[i].pos.x) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.y, b[i].pos.y) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.z, b[i].pos.z) << label << " i=" << i;
    EXPECT_EQ(a[i].time, b[i].time) << label << " i=" << i;
  }
}

std::filesystem::path temp_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, ScheduleIsDeterministic) {
  FaultConfig cfg;
  cfg.mtbf = 0.5;
  cfg.max_crashes = 4;
  cfg.rng_seed = 42;
  const FaultInjector a(cfg, 16);
  const FaultInjector b(cfg, 16);
  ASSERT_EQ(a.crash_schedule().size(), b.crash_schedule().size());
  ASSERT_LE(a.crash_schedule().size(), 4u);
  ASSERT_FALSE(a.crash_schedule().empty());
  for (std::size_t i = 0; i < a.crash_schedule().size(); ++i) {
    EXPECT_EQ(a.crash_schedule()[i].rank, b.crash_schedule()[i].rank);
    EXPECT_EQ(a.crash_schedule()[i].time, b.crash_schedule()[i].time);
    if (i > 0) {
      EXPECT_GE(a.crash_schedule()[i].time, a.crash_schedule()[i - 1].time);
    }
  }
}

TEST(FaultInjector, ImmuneRanksNeverCrash) {
  FaultConfig cfg;
  cfg.mtbf = 0.1;
  cfg.max_crashes = 100;
  cfg.immune_ranks = {0, 1};
  cfg.crashes = {{1.0, 0}, {2.0, 3}, {3.0, 99}};  // 0 immune, 99 oob
  const FaultInjector inj(cfg, 8);
  bool saw_explicit = false;
  for (const CrashEvent& e : inj.crash_schedule()) {
    EXPECT_NE(e.rank, 0);
    EXPECT_NE(e.rank, 1);
    EXPECT_LT(e.rank, 8);
    EXPECT_GE(e.rank, 0);
    if (e.rank == 3 && e.time == 2.0) saw_explicit = true;
  }
  EXPECT_TRUE(saw_explicit);
}

TEST(FaultInjector, EachRankCrashesAtMostOnceFromMtbfDraws) {
  FaultConfig cfg;
  cfg.mtbf = 0.01;  // would draw far more crashes than ranks
  cfg.max_crashes = 100;
  const FaultInjector inj(cfg, 6);
  std::vector<int> seen;
  for (const CrashEvent& e : inj.crash_schedule()) {
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), e.rank) == seen.end())
        << "rank " << e.rank << " crashed twice";
    seen.push_back(e.rank);
  }
  EXPECT_LE(inj.crash_schedule().size(), 6u);
}

TEST(FaultInjector, DrawStreamsAreDeterministicAndIndependent) {
  FaultConfig cfg;
  cfg.disk_fault_rate = 0.3;
  cfg.disk_stall_rate = 0.3;
  cfg.message_drop_rate = 0.3;
  FaultInjector a(cfg, 4);
  FaultInjector b(cfg, 4);
  int faults = 0;
  for (int i = 0; i < 500; ++i) {
    const bool fa = a.draw_disk_fault();
    EXPECT_EQ(fa, b.draw_disk_fault());
    EXPECT_EQ(a.draw_disk_stall(), b.draw_disk_stall());
    EXPECT_EQ(a.draw_message_drop(), b.draw_message_drop());
    faults += fa ? 1 : 0;
  }
  EXPECT_GT(faults, 0);
  EXPECT_LT(faults, 500);
}

TEST(FaultInjector, MaxDropsCapsMessageDrops) {
  FaultConfig cfg;
  cfg.message_drop_rate = 1.0;
  cfg.max_drops = 5;
  FaultInjector inj(cfg, 4);
  int drops = 0;
  for (int i = 0; i < 100; ++i) drops += inj.draw_message_drop() ? 1 : 0;
  EXPECT_EQ(drops, 5);
}

// ---------------------------------------------------------------------------
// Checkpoint file I/O

Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.sim_time = 0.1 + 0.2;  // not exactly representable: exercises bit-exact
  ck.num_ranks = 3;
  Particle done;
  done.id = 7;
  done.pos = {1.0 / 3.0, -2.5e-17, 6.02214076e23};
  done.time = 4.9999999999999994;
  done.h = 1e-3;
  done.steps = 1234;
  done.geometry_points = 99;
  done.status = ParticleStatus::kExitedDomain;
  ck.done.push_back(done);
  Particle act = done;
  act.id = 9;
  act.status = ParticleStatus::kActive;
  ck.active.push_back(act);
  ck.active_owner = {2};
  ck.ranks = {{0, true, {1, 2, 3}}, {1, false, {}}, {2, true, {40}}};
  return ck;
}

TEST(CheckpointIo, RoundTripsBitForBit) {
  const auto path = temp_path("sf_test_roundtrip.sfckpt");
  const Checkpoint ck = sample_checkpoint();
  write_checkpoint(path, ck);
  const Checkpoint rd = read_checkpoint(path);
  std::filesystem::remove(path);

  EXPECT_EQ(rd.sim_time, ck.sim_time);
  EXPECT_EQ(rd.num_ranks, ck.num_ranks);
  expect_same_particles(rd.done, ck.done, "done");
  expect_same_particles(rd.active, ck.active, "active");
  ASSERT_EQ(rd.active[0].h, ck.active[0].h);
  ASSERT_EQ(rd.active[0].geometry_points, ck.active[0].geometry_points);
  EXPECT_EQ(rd.active_owner, ck.active_owner);
  ASSERT_EQ(rd.ranks.size(), ck.ranks.size());
  for (std::size_t i = 0; i < ck.ranks.size(); ++i) {
    EXPECT_EQ(rd.ranks[i].rank, ck.ranks[i].rank);
    EXPECT_EQ(rd.ranks[i].alive, ck.ranks[i].alive);
    EXPECT_EQ(rd.ranks[i].resident, ck.ranks[i].resident);
  }
}

TEST(CheckpointIo, RejectsCorruptFiles) {
  const auto path = temp_path("sf_test_corrupt.sfckpt");
  write_checkpoint(path, sample_checkpoint());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);  // somewhere in the payload
    const char junk = 0x5a;
    f.write(&junk, 1);
  }
  EXPECT_THROW(read_checkpoint(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(read_checkpoint(path), std::runtime_error);  // missing file
}

// ---------------------------------------------------------------------------
// End-to-end recovery, per algorithm

struct FaultWorld {
  sf::testing::TestWorld w = sf::testing::abc_world(2);
  std::vector<Vec3> seeds;

  FaultWorld() {
    Rng rng(321);
    seeds = random_seeds(w.dataset->bounds(), 40, rng);
    seeds.push_back({-9, 0, 0});  // rejected seed: exercises presettled
  }

  ExperimentConfig config(Algorithm algo, int ranks) const {
    auto cfg = test_config(algo, ranks);
    cfg.limits.max_steps = 600;
    cfg.limits.max_time = 10.0;
    return cfg;
  }

  RunMetrics run(const ExperimentConfig& cfg) const {
    return run_experiment(cfg, w.decomp(), *w.source, seeds);
  }
};

class CrashRecovery : public ::testing::TestWithParam<Algorithm> {};

// A rank crash halfway through the run must not change the final
// streamline set: the dead rank's particles are re-run elsewhere from
// their last safe state, which is bit-identical re-integration.
TEST_P(CrashRecovery, MidRunCrashKeepsParticlesIdentical) {
  const Algorithm algo = GetParam();
  const FaultWorld fw;
  const int ranks = 9;  // hybrid: 1 master + 8 slaves

  const RunMetrics clean = fw.run(fw.config(algo, ranks));
  ASSERT_FALSE(clean.failed_oom);
  ASSERT_GT(clean.wall_clock, 0.0);

  auto cfg = fw.config(algo, ranks);
  // Rank 5 is a slave under hybrid and a worker under the others — the
  // plain (non-coordinator) victim.  Coordinator death is exercised by
  // the CoordinatorFailover suite below.
  cfg.runtime.fault.crashes = {{0.5 * clean.wall_clock, 5}};
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.fault.crashes_injected, 1u);
  EXPECT_EQ(m.fault.crashes_survived, 1u);
  EXPECT_GT(m.fault.time_to_recovery, 0.0);
  EXPECT_TRUE(m.ranks[5].crashed);
  expect_same_particles(clean.particles, m.particles, "crash-vs-clean");
  // Recovery costs something (unless the victim was already done).
  EXPECT_GE(m.wall_clock, clean.wall_clock);
}

void expect_same_metrics(const RunMetrics& a, const RunMetrics& b,
                         const char* label) {
  EXPECT_EQ(a.wall_clock, b.wall_clock) << label;
  EXPECT_EQ(a.failed_oom, b.failed_oom) << label;
  EXPECT_EQ(a.total_io_time(), b.total_io_time()) << label;
  EXPECT_EQ(a.total_comm_time(), b.total_comm_time()) << label;
  EXPECT_EQ(a.total_compute_time(), b.total_compute_time()) << label;
  EXPECT_EQ(a.total_messages(), b.total_messages()) << label;
  EXPECT_EQ(a.total_bytes_sent(), b.total_bytes_sent()) << label;
  EXPECT_EQ(a.total_steps(), b.total_steps()) << label;
  EXPECT_EQ(a.fault.crashes_injected, b.fault.crashes_injected) << label;
  EXPECT_EQ(a.fault.messages_dropped, b.fault.messages_dropped) << label;
  EXPECT_EQ(a.fault.disk_faults, b.fault.disk_faults) << label;
  EXPECT_EQ(a.fault.particles_recovered, b.fault.particles_recovered)
      << label;
  EXPECT_EQ(a.fault.steps_redone, b.fault.steps_redone) << label;
  expect_same_particles(a.particles, b.particles, label);
}

// Repeat runs are bit-for-bit identical — both on the fault-free default
// path and under an injected fault schedule (seeded draws, DES ordering).
TEST_P(CrashRecovery, RepeatRunsAreDeterministic) {
  const Algorithm algo = GetParam();
  const FaultWorld fw;

  const auto clean_cfg = fw.config(algo, 6);
  expect_same_metrics(fw.run(clean_cfg), fw.run(clean_cfg), "clean-repeat");

  auto cfg = fw.config(algo, 6);
  cfg.runtime.fault.mtbf = 0.05;
  cfg.runtime.fault.max_crashes = 2;
  cfg.runtime.fault.message_drop_rate = 0.05;
  expect_same_metrics(fw.run(cfg), fw.run(cfg), "faulted-repeat");
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CrashRecovery,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case Algorithm::kStaticAllocation:
                               return "Static";
                             case Algorithm::kLoadOnDemand: return "Lod";
                             default: return "Hybrid";
                           }
                         });

TEST(FaultRecovery, DiskFaultsAreRetriedWithoutChangingResults) {
  const FaultWorld fw;
  const RunMetrics clean = fw.run(fw.config(Algorithm::kLoadOnDemand, 6));

  auto cfg = fw.config(Algorithm::kLoadOnDemand, 6);
  cfg.runtime.fault.disk_fault_rate = 0.2;
  cfg.runtime.fault.disk_stall_rate = 0.1;
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  EXPECT_GT(m.fault.disk_faults, 0u);
  std::uint64_t retries = 0;
  for (const RankMetrics& r : m.ranks) retries += r.disk_retries;
  EXPECT_EQ(retries, m.fault.disk_faults);
  expect_same_particles(clean.particles, m.particles, "disk-vs-clean");
  EXPECT_GT(m.wall_clock, clean.wall_clock);  // retries + stalls cost time
}

TEST(FaultRecovery, DroppedMessagesBounceAndNoStreamlineIsLost) {
  const FaultWorld fw;
  const RunMetrics clean =
      fw.run(fw.config(Algorithm::kStaticAllocation, 6));

  auto cfg = fw.config(Algorithm::kStaticAllocation, 6);
  cfg.runtime.fault.message_drop_rate = 0.3;
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  EXPECT_GT(m.fault.messages_dropped, 0u);
  expect_same_particles(clean.particles, m.particles, "drops-vs-clean");
}

// ---------------------------------------------------------------------------
// Coordinator failover (DESIGN.md §11)

// Killing rank 0 removes the coordinator everywhere: the hybrid master
// (the lowest-rank orphaned slave promotes itself), and the termination
// counter under static allocation / load-on-demand (the role migrates to
// the lowest live rank, re-seeded from a ledger recount).  No rank is
// immune; the surviving trajectories must match the clean run exactly.
class CoordinatorFailover : public ::testing::TestWithParam<Algorithm> {};

TEST_P(CoordinatorFailover, RankZeroCrashKeepsParticlesIdentical) {
  const Algorithm algo = GetParam();
  const FaultWorld fw;
  const int ranks = 9;  // hybrid: rank 0 is the only master

  const RunMetrics clean = fw.run(fw.config(algo, ranks));
  ASSERT_FALSE(clean.failed_oom);
  ASSERT_GT(clean.wall_clock, 0.0);

  auto cfg = fw.config(algo, ranks);
  cfg.runtime.fault.crashes = {{0.4 * clean.wall_clock, 0}};
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_TRUE(m.ranks[0].crashed);
  EXPECT_EQ(m.fault.crashes_injected, 1u);
  EXPECT_EQ(m.fault.crashes_survived, 1u);
  expect_same_particles(clean.particles, m.particles, "rank0-crash-vs-clean");

  // The per-crash timeline is surfaced (satellite: failure-detection
  // latency and recovery wall time are first-class metrics): detection
  // strictly after the crash, recovery no earlier than detection.
  ASSERT_EQ(m.fault.crash_records.size(), 1u);
  const CrashRecord& rec = m.fault.crash_records[0];
  EXPECT_EQ(rec.rank, 0);
  EXPECT_GT(rec.detect_time, rec.crash_time);
  EXPECT_GE(rec.recover_time, rec.detect_time);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CoordinatorFailover,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case Algorithm::kStaticAllocation:
                               return "Static";
                             case Algorithm::kLoadOnDemand: return "Lod";
                             default: return "Hybrid";
                           }
                         });

// With two masters, killing one must re-home its orphaned slaves to the
// surviving peer master (no promotion needed), which adopts the dead
// coordinator's seed pool and scheduling state from re-reported status.
TEST(CoordinatorFailoverHybrid, PeerMasterAdoptsOrphanedSlaves) {
  const FaultWorld fw;
  auto base = fw.config(Algorithm::kHybridMasterSlave, 9);
  base.hybrid.slaves_per_master = 3;  // 9 ranks -> masters {0, 1}

  const RunMetrics clean = fw.run(base);
  ASSERT_FALSE(clean.failed_oom);

  auto cfg = base;
  cfg.runtime.fault.crashes = {{0.4 * clean.wall_clock, 0}};
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_TRUE(m.ranks[0].crashed);
  expect_same_particles(clean.particles, m.particles, "peer-master-vs-clean");
  ASSERT_EQ(m.fault.crash_records.size(), 1u);
  EXPECT_GT(m.fault.crash_records[0].detect_time,
            m.fault.crash_records[0].crash_time);
  EXPECT_GE(m.fault.crash_records[0].recover_time,
            m.fault.crash_records[0].detect_time);
}

// ---------------------------------------------------------------------------
// Master-tree failover (DESIGN.md §15)
//
// The crash matrix below runs on SimRuntime only: ThreadRuntime has no
// fault plane (run_experiment_threads rejects fault configs), so "both
// runtimes" coverage for the tree is the crash suite on the simulator
// plus the fault-free tree-vs-threads equivalence test at the end.

struct TreeFaultWorld : FaultWorld {
  // 13 ranks at W=2 / fanout=2: roots {0, 1}, leaf masters {2..5},
  // slaves {6..12} — the smallest layout that puts a root above every
  // leaf while leaving each leaf a non-trivial slave group.
  ExperimentConfig tree_config() const {
    auto cfg = config(Algorithm::kHybridMasterSlave, 13);
    cfg.hybrid.slaves_per_master = 2;
    cfg.hybrid.root_fanout = 2;
    // A root has no slaves watching it, so its death is only noticed by
    // the surviving masters' periodic tick; tighten the heartbeat (only
    // faulted runs wire it up) so that tick fires within this short run.
    cfg.runtime.fault.heartbeat_period = 0.002;
    return cfg;
  }
};

// A dead leaf master is absorbed by its parent root: the root inherits
// the leaf's seed pool and slave group, and the run completes with the
// same streamlines as the fault-free tree run.
TEST(TreeFailover, LeafMasterDeathIsAbsorbedByItsRoot) {
  const TreeFaultWorld fw;
  const auto base = fw.tree_config();
  const HybridLayout layout = HybridLayout::make(13, 2, 2);
  ASSERT_EQ(layout.num_roots, 2);
  ASSERT_EQ(layout.root_of(2), 0);  // leaf 2's parent is root 0

  const RunMetrics clean = fw.run(base);
  ASSERT_FALSE(clean.failed_oom);
  ASSERT_GT(clean.wall_clock, 0.0);

  auto cfg = base;
  cfg.runtime.fault.crashes = {{0.4 * clean.wall_clock, 2}};
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_TRUE(m.ranks[2].crashed);
  EXPECT_EQ(m.fault.crashes_survived, 1u);
  expect_same_particles(clean.particles, m.particles, "leaf-death-vs-clean");
  ASSERT_EQ(m.fault.crash_records.size(), 1u);
  EXPECT_GT(m.fault.crash_records[0].detect_time,
            m.fault.crash_records[0].crash_time);
}

// Killing a root removes a tier-1 coordinator (and, for root 0, the
// termination counter): the surviving root deterministically takes over
// its leaves and the counter role.
TEST(TreeFailover, RootMasterDeathPromotesSurvivor) {
  const TreeFaultWorld fw;
  const auto base = fw.tree_config();

  const RunMetrics clean = fw.run(base);
  ASSERT_FALSE(clean.failed_oom);

  auto cfg = base;
  cfg.runtime.fault.crashes = {{0.4 * clean.wall_clock, 0}};
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_TRUE(m.ranks[0].crashed);
  EXPECT_EQ(m.fault.crashes_survived, 1u);
  expect_same_particles(clean.particles, m.particles, "root-death-vs-clean");
}

// Both tiers lose a coordinator in quick succession — the root that
// would have adopted leaf 2's group is itself dead, so the recovery
// chain has to re-route (successor adoption) without losing a seed.
TEST(TreeFailover, SimultaneousLeafAndRootDeathStillConverges) {
  const TreeFaultWorld fw;
  const auto base = fw.tree_config();

  const RunMetrics clean = fw.run(base);
  ASSERT_FALSE(clean.failed_oom);

  auto cfg = base;
  cfg.runtime.fault.crashes = {{0.4 * clean.wall_clock, 0},
                               {0.4 * clean.wall_clock, 2}};
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_TRUE(m.ranks[0].crashed);
  EXPECT_TRUE(m.ranks[2].crashed);
  EXPECT_EQ(m.fault.crashes_survived, 2u);
  expect_same_particles(clean.particles, m.particles,
                        "leaf-and-root-death-vs-clean");
}

// ThreadRuntime leg: the tree layout on real threads terminates with the
// same streamline set as the discrete-event simulator (fault-free — the
// thread runtime has no fault plane to crash a rank with).
TEST(TreeFailover, FaultFreeTreeRunMatchesOnRealThreads) {
  const TreeFaultWorld fw;
  const auto cfg = fw.tree_config();

  const RunMetrics sim = fw.run(cfg);
  ASSERT_FALSE(sim.failed_oom);

  const RunMetrics thr =
      run_experiment_threads(cfg, fw.w.decomp(), *fw.w.source, fw.seeds);
  ASSERT_FALSE(thr.failed_oom);
  expect_same_particles(sim.particles, thr.particles, "tree-sim-vs-threads");
}

// The sequenced control transport repairs a lossy link: dropped status /
// command / beacon traffic is retransmitted until acked, and duplicates
// created by lost acks are absorbed by the receiver's dedup window —
// exactly-once program dispatch, so accounting never double-counts.
TEST(ControlPlane, DropsAreRetransmittedAndDeduplicated) {
  const FaultWorld fw;
  const RunMetrics clean =
      fw.run(fw.config(Algorithm::kHybridMasterSlave, 6));
  ASSERT_FALSE(clean.failed_oom);

  auto cfg = fw.config(Algorithm::kHybridMasterSlave, 6);
  cfg.runtime.fault.message_drop_rate = 0.25;
  const RunMetrics m = fw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_GT(m.fault.messages_dropped, 0u);
  EXPECT_GT(m.fault.control_retransmits, 0u);
  EXPECT_GT(m.fault.control_duplicates, 0u);
  expect_same_particles(clean.particles, m.particles,
                        "control-drops-vs-clean");
}

// ---------------------------------------------------------------------------
// Checkpoint / restart

class CheckpointRestart : public ::testing::TestWithParam<Algorithm> {};

TEST_P(CheckpointRestart, RestartReproducesUninterruptedRun) {
  const Algorithm algo = GetParam();
  const FaultWorld fw;
  const int ranks = 9;

  const RunMetrics clean = fw.run(fw.config(algo, ranks));
  ASSERT_FALSE(clean.failed_oom);

  const auto path = temp_path(algo == Algorithm::kStaticAllocation
                                  ? "sf_test_restart_static.sfckpt"
                                  : algo == Algorithm::kLoadOnDemand
                                        ? "sf_test_restart_lod.sfckpt"
                                        : "sf_test_restart_hybrid.sfckpt");
  auto cfg = fw.config(algo, ranks);
  cfg.runtime.fault.checkpoint_interval = 0.4 * clean.wall_clock;
  cfg.runtime.fault.checkpoint_path = path.string();
  const RunMetrics ck_run = fw.run(cfg);
  ASSERT_FALSE(ck_run.failed_oom);
  ASSERT_GT(ck_run.fault.checkpoints_taken, 0u);
  ASSERT_NE(ck_run.last_checkpoint, nullptr);
  expect_same_particles(clean.particles, ck_run.particles,
                        "checkpointed-vs-clean");

  // The checkpoint file holds a mid-run snapshot: some streamlines done,
  // some still in flight.  Restarting from it must land on exactly the
  // uninterrupted final state.
  auto restart = fw.config(algo, ranks);
  restart.restart_from = path.string();
  const RunMetrics resumed = fw.run(restart);
  std::filesystem::remove(path);
  ASSERT_FALSE(resumed.failed_oom);
  expect_same_particles(clean.particles, resumed.particles,
                        "restart-vs-clean");
}

INSTANTIATE_TEST_SUITE_P(AlgorithmsWithState, CheckpointRestart,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case Algorithm::kStaticAllocation:
                               return "Static";
                             case Algorithm::kLoadOnDemand: return "Lod";
                             default: return "Hybrid";
                           }
                         });

// Checkpoints carry a run-topology stamp (format v2): resuming with a
// different rank count, algorithm, or dataset decomposition is a hard
// configuration error, not silent misbehavior.
TEST(CheckpointRestartValidation, RejectsMismatchedRunTopology) {
  const FaultWorld fw;
  const auto path = temp_path("sf_test_restart_topology.sfckpt");

  auto cfg = fw.config(Algorithm::kStaticAllocation, 4);
  const RunMetrics clean = fw.run(cfg);
  ASSERT_FALSE(clean.failed_oom);
  cfg.runtime.fault.checkpoint_interval = 0.4 * clean.wall_clock;
  cfg.runtime.fault.checkpoint_path = path.string();
  ASSERT_GT(fw.run(cfg).fault.checkpoints_taken, 0u);

  // Wrong rank count.
  auto wrong_ranks = fw.config(Algorithm::kStaticAllocation, 5);
  wrong_ranks.restart_from = path.string();
  EXPECT_THROW(fw.run(wrong_ranks), std::invalid_argument);

  // Wrong algorithm.
  auto wrong_algo = fw.config(Algorithm::kLoadOnDemand, 4);
  wrong_algo.restart_from = path.string();
  EXPECT_THROW(fw.run(wrong_algo), std::invalid_argument);

  // Different dataset decomposition (other block grid -> other hash).
  const sf::testing::TestWorld other = sf::testing::abc_world(3);
  auto wrong_data = fw.config(Algorithm::kStaticAllocation, 4);
  wrong_data.restart_from = path.string();
  EXPECT_THROW(run_experiment(wrong_data, other.decomp(), *other.source,
                              fw.seeds),
               std::invalid_argument);

  // The matching topology still restarts fine.
  auto ok = fw.config(Algorithm::kStaticAllocation, 4);
  ok.restart_from = path.string();
  const RunMetrics resumed = fw.run(ok);
  std::filesystem::remove(path);
  ASSERT_FALSE(resumed.failed_oom);
  expect_same_particles(clean.particles, resumed.particles,
                        "topology-ok-restart");
}

// ---------------------------------------------------------------------------
// Undeliverable bounce handling (unit level)

// A minimal RankContext: records sends, block requests and memory
// charges, never computes (nothing is resident).  Lets the bounce
// handlers be driven directly, including the dead-owner re-routing that
// an end-to-end run only reaches through rare drop/crash interleavings.
class FakeContext final : public RankContext {
 public:
  FakeContext(const BlockDecomposition* decomp, const Tracer* tracer,
              int rank, int num_ranks)
      : alive(static_cast<std::size_t>(num_ranks), true),
        decomp_(decomp),
        tracer_(tracer),
        model_(sf::testing::test_model()),
        rank_(rank),
        num_ranks_(num_ranks) {}

  int rank() const override { return rank_; }
  int num_ranks() const override { return num_ranks_; }
  double now() const override { return 0.0; }
  const BlockDecomposition& decomposition() const override {
    return *decomp_;
  }
  const Tracer& tracer() const override { return *tracer_; }
  const MachineModel& model() const override { return model_; }
  void send(int to, Message msg) override {
    sent.emplace_back(to, std::move(msg));
  }
  void request_block(BlockId id) override { requested.push_back(id); }
  bool block_resident(BlockId) const override { return false; }
  bool block_pending(BlockId) const override { return false; }
  std::vector<BlockId> resident_blocks() const override { return {}; }
  const StructuredGrid* block(BlockId) override { return nullptr; }
  void begin_compute(double, std::uint64_t) override { ++computes; }
  bool busy() const override { return false; }
  void charge_particle_memory(std::int64_t delta) override {
    charged += delta;
  }
  bool is_alive(int target) const override {
    return alive[static_cast<std::size_t>(target)];
  }

  std::vector<std::pair<int, Message>> sent;
  std::vector<BlockId> requested;
  std::vector<bool> alive;
  std::int64_t charged = 0;
  int computes = 0;

 private:
  const BlockDecomposition* decomp_;
  const Tracer* tracer_;
  MachineModel model_;
  int rank_;
  int num_ranks_;
};

// One in-domain particle per ownership side of a 2-rank contiguous split.
struct BouncePair {
  Particle mine;    // block owned by rank 0
  Particle theirs;  // block owned by rank 1
};

BouncePair bounce_pair(const FaultWorld& fw) {
  const BlockDecomposition& decomp = fw.w.decomp();
  std::vector<Particle> rejected;
  std::vector<Particle> all = make_particles(decomp, fw.seeds, rejected);
  BouncePair out;
  bool have_mine = false, have_theirs = false;
  for (const Particle& p : all) {
    const int owner =
        contiguous_owner(decomp.num_blocks(), 2, decomp.block_of(p.pos));
    if (owner == 0 && !have_mine) {
      out.mine = p;
      have_mine = true;
    } else if (owner == 1 && !have_theirs) {
      out.theirs = p;
      have_theirs = true;
    }
  }
  EXPECT_TRUE(have_mine && have_theirs);
  return out;
}

TEST(UndeliverableBounce, StaticAllocationReroutesToLiveOwner) {
  const FaultWorld fw;
  const BlockDecomposition& decomp = fw.w.decomp();
  const Tracer tracer(&decomp, IntegratorParams{}, TraceLimits{});
  const BouncePair pair = bounce_pair(fw);

  auto factory = make_static_allocation(&decomp, {{}, {}}, 2);
  std::unique_ptr<RankProgram> prog = factory(0, 2);
  FakeContext ctx(&decomp, &tracer, 0, 2);
  prog->start(ctx);

  // A bounced hand-off carrying one particle from each side: ours is
  // pooled (and re-charged), the other re-forwarded to its live owner.
  Message m;
  m.from = 1;
  m.payload = Undeliverable{1, kInvalidBlock, {pair.mine, pair.theirs}};
  prog->on_message(ctx, std::move(m));

  std::vector<Particle> snap;
  prog->snapshot_particles(snap);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].id, pair.mine.id);
  EXPECT_GT(ctx.charged, 0);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].first, 1);
  const auto* fwd = std::get_if<ParticleBatch>(&ctx.sent[0].second.payload);
  ASSERT_NE(fwd, nullptr);
  ASSERT_EQ(fwd->particles.size(), 1u);
  EXPECT_EQ(fwd->particles[0].id, pair.theirs.id);

  // Same bounce with the owner dead: re-routing must adopt the particle
  // locally (live_owner redirects past the corpse) instead of sending
  // into the void.
  ctx.alive[1] = false;
  ctx.sent.clear();
  Message again;
  again.from = 1;
  again.payload = Undeliverable{1, kInvalidBlock, {pair.theirs}};
  prog->on_message(ctx, std::move(again));

  snap.clear();
  prog->snapshot_particles(snap);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(UndeliverableBounce, LoadOnDemandAdoptsBouncedParticles) {
  const FaultWorld fw;
  const BlockDecomposition& decomp = fw.w.decomp();
  const Tracer tracer(&decomp, IntegratorParams{}, TraceLimits{});
  const BouncePair pair = bounce_pair(fw);

  auto factory = make_load_on_demand(&decomp, {{}});
  std::unique_ptr<RankProgram> prog = factory(0, 1);
  FakeContext ctx(&decomp, &tracer, 0, 1);
  prog->start(ctx);
  EXPECT_TRUE(prog->finished());  // empty pool: independently done

  // A recovery hand-off that bounced off a dead successor lands here:
  // both particles join the pool, the rank re-opens and asks for the
  // block that unblocks them.  Load On Demand never communicates.
  Message m;
  m.from = 2;
  m.payload = Undeliverable{3, kInvalidBlock, {pair.mine, pair.theirs}};
  prog->on_message(ctx, std::move(m));

  EXPECT_FALSE(prog->finished());
  std::vector<Particle> snap;
  prog->snapshot_particles(snap);
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_GT(ctx.charged, 0);
  EXPECT_TRUE(ctx.sent.empty());
  EXPECT_FALSE(ctx.requested.empty());
}

// ---------------------------------------------------------------------------
// OOM handling

TEST(FaultRecovery, OomWithoutFaultLayerKeepsPartialResults) {
  const FaultWorld fw;
  auto cfg = fw.config(Algorithm::kStaticAllocation, 4);
  cfg.runtime.model.particle_memory_bytes = 16 << 10;  // tight: OOM mid-run
  const RunMetrics m = fw.run(cfg);

  ASSERT_TRUE(m.failed_oom);
  EXPECT_FALSE(m.failed_fault);  // the fault layer never engaged
  EXPECT_FALSE(m.abort_reason.empty());
  // Partial metrics and particles survive the abort (satellite: failed
  // runs are diagnosable, not empty).
  EXPECT_GT(m.total_steps(), 0u);
  EXPECT_LT(m.particles.size(), fw.seeds.size());
  bool some_oom = false;
  for (const RankMetrics& r : m.ranks) some_oom |= r.oom;
  EXPECT_TRUE(some_oom);
}

TEST(FaultRecovery, OomBecomesARecoverableCrashUnderFaultInjection) {
  const FaultWorld fw;
  auto cfg = fw.config(Algorithm::kStaticAllocation, 4);
  cfg.runtime.model.particle_memory_bytes = 16 << 10;
  cfg.runtime.fault.enabled = true;
  const RunMetrics m = fw.run(cfg);

  // The first OOM abort is converted into a rank crash and its work
  // re-routed.  Whether the run then completes depends on whether the
  // survivors fit the budget; either way the conversion must be counted.
  EXPECT_GE(m.fault.oom_crashes, 1u);
  if (m.failed_oom) {
    EXPECT_TRUE(m.failed_fault);
    EXPECT_FALSE(m.abort_reason.empty());
  } else {
    const RunMetrics clean = fw.run(fw.config(Algorithm::kStaticAllocation,
                                              4));
    expect_same_particles(clean.particles, m.particles, "oom-vs-clean");
  }
}

}  // namespace
}  // namespace sf
