#include "runtime/timeline.hpp"

#include <gtest/gtest.h>

#include "algorithms/driver.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

TEST(Timeline, RankUtilizationSumsComputeSpans) {
  Timeline t(2);
  t.add(0, TimelineSpan::Kind::kCompute, 0.0, 2.0);
  t.add(0, TimelineSpan::Kind::kCompute, 3.0, 4.0);
  t.add(0, TimelineSpan::Kind::kIo, 2.0, 3.0);  // I/O is not "busy"
  t.add(1, TimelineSpan::Kind::kCompute, 0.0, 1.0);
  const auto u = t.rank_utilization(4.0);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0], 0.75);
  EXPECT_DOUBLE_EQ(u[1], 0.25);
}

TEST(Timeline, UtilizationCurveDistributesSpans) {
  Timeline t(1);
  t.add(0, TimelineSpan::Kind::kCompute, 0.0, 5.0);
  const auto curve = t.utilization_curve(10.0, 10);
  ASSERT_EQ(curve.size(), 10u);
  for (int b = 0; b < 5; ++b) EXPECT_DOUBLE_EQ(curve[b], 1.0);
  for (int b = 5; b < 10; ++b) EXPECT_DOUBLE_EQ(curve[b], 0.0);
}

TEST(Timeline, CurveHandlesSpansCrossingBins) {
  Timeline t(2);
  t.add(0, TimelineSpan::Kind::kCompute, 0.5, 1.5);  // half in each bin
  const auto curve = t.utilization_curve(2.0, 2);
  EXPECT_DOUBLE_EQ(curve[0], 0.25);  // 0.5s of 1s bin / 2 ranks
  EXPECT_DOUBLE_EQ(curve[1], 0.25);
}

TEST(Timeline, StarvedSeconds) {
  Timeline t(2);  // total capacity = 2 ranks x 10 s = 20 rank-seconds
  t.add(0, TimelineSpan::Kind::kCompute, 0.0, 10.0);
  t.add(1, TimelineSpan::Kind::kIo, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(t.total_starved_seconds(10.0), 5.0);
}

TEST(Timeline, DegenerateInputs) {
  Timeline t(2);
  EXPECT_TRUE(t.utilization_curve(0.0, 4).size() == 4);
  EXPECT_DOUBLE_EQ(t.total_starved_seconds(0.0), 0.0);
  const auto u = t.rank_utilization(0.0);
  EXPECT_DOUBLE_EQ(u[0], 0.0);
}

TEST(Timeline, SimRuntimeRecordsWhenEnabled) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(3);
  const auto seeds = random_seeds(w.dataset->bounds(), 20, rng);
  auto cfg = sf::testing::test_config(Algorithm::kLoadOnDemand, 4);
  cfg.runtime.record_timeline = true;
  cfg.limits.max_steps = 300;
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  ASSERT_NE(m.timeline, nullptr);
  EXPECT_GT(m.timeline->spans().size(), 0u);

  // The timeline's busy accounting must agree with the metrics.
  const auto u = m.timeline->rank_utilization(m.wall_clock);
  double busy_from_timeline = 0.0;
  for (std::size_t r = 0; r < u.size(); ++r) {
    busy_from_timeline += u[r] * m.wall_clock;
  }
  EXPECT_NEAR(busy_from_timeline, m.total_compute_time(),
              1e-9 * std::max(1.0, m.total_compute_time()));

  // And it is off by default.
  cfg.runtime.record_timeline = false;
  const RunMetrics m2 = run_experiment(cfg, w.decomp(), *w.source, seeds);
  EXPECT_EQ(m2.timeline, nullptr);
}

TEST(Timeline, StaticImbalanceVisibleInCurve) {
  // Dense cluster advected through a straight pipe of blocks: under
  // Static Allocation only the pipe's owners ever work while the other
  // ranks starve; the hybrid replicates the hot blocks across slaves.
  auto w = sf::testing::make_world(
      std::make_shared<UniformField>(Vec3{1, 0, 0},
                                     AABB{{-1, -1, -1}, {1, 1, 1}}),
      2);
  Rng rng(5);
  const auto seeds =
      cluster_seeds({-0.9, 0.5, 0.5}, 0.03, 60, rng, w.dataset->bounds());

  auto cfg = sf::testing::test_config(Algorithm::kStaticAllocation, 8);
  cfg.runtime.record_timeline = true;
  // Advection-dominated regime (like the paper's runs): imbalance shows
  // up as wall clock, not as I/O noise.
  cfg.runtime.model.seconds_per_step = 2e-4;
  cfg.limits.max_steps = 500;
  const RunMetrics st = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(st.failed_oom);
  ASSERT_NE(st.timeline, nullptr);

  cfg.algorithm = Algorithm::kHybridMasterSlave;
  const RunMetrics hy = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(hy.failed_oom);

  // The same compute total spread over fewer wall-seconds and more
  // ranks: hybrid's mean utilization beats static's, and it wastes
  // fewer rank-seconds starved.
  EXPECT_GT(hy.mean_utilization(), st.mean_utilization());
  EXPECT_LT(hy.timeline->total_starved_seconds(hy.wall_clock),
            st.timeline->total_starved_seconds(st.wall_clock));
}

}  // namespace
}  // namespace sf
