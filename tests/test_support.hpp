#pragma once

// Shared builders for algorithm/runtime tests: a small rotor dataset (a
// flow whose trajectories cross blocks predictably), fast machine models
// and a default experiment config.

#include <memory>

#include "algorithms/driver.hpp"
#include "core/analytic_fields.hpp"
#include "core/dataset.hpp"
#include "core/seeds.hpp"

namespace sf::testing {

struct TestWorld {
  FieldPtr field;
  DatasetPtr dataset;
  std::unique_ptr<DatasetBlockSource> source;

  const BlockDecomposition& decomp() const {
    return dataset->decomposition();
  }
};

inline TestWorld make_world(FieldPtr field, int blocks_per_axis = 4,
                            int nodes = 9, int ghost = 2,
                            std::size_t modelled_block_bytes = 0) {
  TestWorld w;
  w.field = field;
  const BlockDecomposition decomp(field->bounds(), blocks_per_axis,
                                  blocks_per_axis, blocks_per_axis);
  w.dataset =
      std::make_shared<BlockedDataset>(field, decomp, nodes, ghost);
  w.source = std::make_unique<DatasetBlockSource>(w.dataset,
                                                  modelled_block_bytes);
  return w;
}

inline TestWorld rotor_world(int blocks_per_axis = 4) {
  return make_world(std::make_shared<RotorField>(), blocks_per_axis);
}

inline TestWorld abc_world(int blocks_per_axis = 4) {
  return make_world(std::make_shared<ABCField>(), blocks_per_axis);
}

// Machine model scaled so tests run instantly but ratios stay sane.
inline MachineModel test_model() {
  MachineModel m;
  m.seconds_per_step = 1e-6;
  m.io_latency = 1e-3;
  m.io_bandwidth = 1e9;
  m.io_channels = 4;
  m.net_latency = 1e-5;
  m.net_bandwidth = 1e9;
  m.msg_overhead = 1e-5;
  m.pack_bandwidth = 1e9;
  m.particle_memory_bytes = 1ull << 30;
  m.particle_overhead_bytes = 1 << 10;
  return m;
}

inline ExperimentConfig test_config(Algorithm algo, int ranks) {
  ExperimentConfig cfg;
  cfg.algorithm = algo;
  cfg.runtime.num_ranks = ranks;
  cfg.runtime.model = test_model();
  cfg.runtime.cache_blocks = 16;
  cfg.limits.max_time = 25.0;
  cfg.limits.max_steps = 4000;
  cfg.limits.min_speed = 1e-8;
  cfg.hybrid.slaves_per_master = 8;
  return cfg;
}

}  // namespace sf::testing
