#include "analysis/stream_surface.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"

namespace sf {
namespace {

TEST(StreamSurface, UniformFlowSweepsARuledStrip) {
  const UniformField field({1, 0, 0}, AABB{{0, -2, -2}, {10, 2, 2}});
  const auto curve = line_seeds({0.1, -1, 0}, {0.1, 1, 0}, 9);
  StreamSurfaceParams prm;
  prm.ring_dt = 0.5;
  prm.max_rings = 4;
  prm.split_distance = 10.0;  // no refinement
  const StreamSurface s = compute_stream_surface(field, curve, prm);

  EXPECT_EQ(s.rings, 4u);
  EXPECT_EQ(s.inserted_streamlines, 0u);
  // 5 rings of 9 vertices, 4 ribbons of 16 triangles each.
  EXPECT_EQ(s.vertices.size(), 45u);
  EXPECT_EQ(s.triangles.size(), 64u);
  // Every vertex stays at its seed's y/z, advected in x.
  for (const Vec3& v : s.vertices) {
    EXPECT_NEAR(v.z, 0.0, 1e-9);
    EXPECT_GE(v.x, 0.1 - 1e-9);
    EXPECT_LE(v.x, 0.1 + 4 * 0.5 + 1e-6);
  }
}

TEST(StreamSurface, TriangleIndicesAreValid) {
  const ABCField field;
  const auto curve = line_seeds({1, 1, 1}, {1, 2, 1}, 6);
  StreamSurfaceParams prm;
  prm.ring_dt = 0.1;
  prm.max_rings = 20;
  prm.split_distance = 0.3;
  const StreamSurface s = compute_stream_surface(field, curve, prm);
  EXPECT_GT(s.triangles.size(), 0u);
  for (const Triangle& t : s.triangles) {
    for (const std::uint32_t v : t) {
      ASSERT_LT(v, s.vertices.size());
    }
    // Non-degenerate: three distinct vertices.
    EXPECT_NE(t[0], t[1]);
    EXPECT_NE(t[1], t[2]);
    EXPECT_NE(t[0], t[2]);
  }
}

TEST(StreamSurface, DivergingFlowTriggersDynamicInsertion) {
  // A radially expanding planar flow stretches the front; the surface
  // must insert new streamlines (the §8 dynamic-seed behaviour).
  class Diverging final : public VectorField {
   public:
    bool sample(const Vec3& p, Vec3& out) const override {
      if (!bounds().contains(p)) return false;
      out = {p.x, p.y, 0.0};
      return true;
    }
    AABB bounds() const override { return {{-50, -50, -1}, {50, 50, 1}}; }
  };
  const Diverging field;
  const auto curve = line_seeds({0.5, -0.2, 0}, {0.5, 0.2, 0}, 5);
  StreamSurfaceParams prm;
  prm.ring_dt = 0.4;
  prm.max_rings = 8;
  prm.split_distance = 0.15;
  const StreamSurface s = compute_stream_surface(field, curve, prm);
  EXPECT_GT(s.inserted_streamlines, 0u);
  EXPECT_GT(s.triangles.size(), 7u * 2u * 4u);  // more than unrefined
}

TEST(StreamSurface, FrontDiesAtDomainBoundary) {
  const UniformField field({1, 0, 0}, AABB{{0, -1, -1}, {1, 1, 1}});
  const auto curve = line_seeds({0.9, -0.5, 0}, {0.9, 0.5, 0}, 5);
  StreamSurfaceParams prm;
  prm.ring_dt = 0.5;  // first ring advances past the x = 1 face
  prm.max_rings = 10;
  const StreamSurface s = compute_stream_surface(field, curve, prm);
  // The surface collapses quickly but construction stays well formed.
  for (const Triangle& t : s.triangles) {
    for (const std::uint32_t v : t) ASSERT_LT(v, s.vertices.size());
  }
  EXPECT_LE(s.rings, 2u);
}

TEST(StreamSurface, DegenerateInputs) {
  const UniformField field({1, 0, 0});
  EXPECT_TRUE(
      compute_stream_surface(field, std::span<const Vec3>{}, {}).vertices
          .empty());
  const std::vector<Vec3> one{{0, 0, 0}};
  EXPECT_TRUE(compute_stream_surface(field, one, {}).vertices.empty());
}

TEST(StreamSurface, MaxFrontCapsGrowth) {
  class Diverging final : public VectorField {
   public:
    bool sample(const Vec3& p, Vec3& out) const override {
      if (!bounds().contains(p)) return false;
      out = {p.x, p.y, 0.0};
      return true;
    }
    AABB bounds() const override { return {{-50, -50, -1}, {50, 50, 1}}; }
  };
  const Diverging field;
  const auto curve = line_seeds({0.5, -0.2, 0}, {0.5, 0.2, 0}, 5);
  StreamSurfaceParams prm;
  prm.ring_dt = 0.4;
  prm.max_rings = 10;
  prm.split_distance = 0.01;  // aggressive splitting
  prm.max_front = 32;
  const StreamSurface s = compute_stream_surface(field, curve, prm);
  EXPECT_LE(s.inserted_streamlines, 32u);
}

}  // namespace
}  // namespace sf
