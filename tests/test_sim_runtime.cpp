#include "runtime/sim_runtime.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sf {
namespace {

using testing::make_world;
using testing::test_model;
using sf::testing::TestWorld;

// A scripted program for poking the runtime contract directly.
class ScriptProgram final : public RankProgram {
 public:
  std::function<void(ScriptProgram&, RankContext&)> on_start;
  std::function<void(ScriptProgram&, RankContext&, Message)> on_msg;
  std::function<void(ScriptProgram&, RankContext&, BlockId)> on_block;
  std::function<void(ScriptProgram&, RankContext&)> on_done;
  bool done = false;

  void start(RankContext& ctx) override {
    if (on_start) on_start(*this, ctx);
  }
  void on_message(RankContext& ctx, Message m) override {
    if (on_msg) on_msg(*this, ctx, std::move(m));
  }
  void on_block_loaded(RankContext& ctx, BlockId id) override {
    if (on_block) on_block(*this, ctx, id);
  }
  void on_compute_done(RankContext& ctx) override {
    if (on_done) on_done(*this, ctx);
  }
  bool finished() const override { return done; }
  void collect_particles(std::vector<Particle>&) const override {}
};

SimRuntimeConfig config_for(int ranks) {
  SimRuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.model = test_model();
  cfg.cache_blocks = 4;
  return cfg;
}

TEST(SimRuntime, MessageDeliveryCostsAndArrives) {
  TestWorld w = testing::rotor_world(2);
  SimRuntime rt(config_for(2), &w.decomp(), w.source.get(),
                IntegratorParams{}, TraceLimits{});

  bool received = false;
  double recv_time = -1.0;
  const RunMetrics m = rt.run([&](int rank, int) {
    auto p = std::make_unique<ScriptProgram>();
    if (rank == 0) {
      p->on_start = [](ScriptProgram& self, RankContext& ctx) {
        Message msg;
        msg.payload = DoneSignal{};
        ctx.send(1, std::move(msg));
        self.done = true;
      };
    } else {
      p->on_msg = [&](ScriptProgram& self, RankContext& ctx, Message msg) {
        received = true;
        recv_time = ctx.now();
        EXPECT_EQ(msg.from, 0);
        self.done = true;
      };
    }
    return p;
  });

  EXPECT_TRUE(received);
  EXPECT_GT(recv_time, 0.0);  // latency applied
  EXPECT_EQ(m.ranks[0].messages_sent, 1u);
  EXPECT_GT(m.ranks[0].comm_time, 0.0);
  EXPECT_GT(m.ranks[1].comm_time, 0.0);  // receive side pays too
  EXPECT_EQ(m.ranks[1].messages_sent, 0u);
}

TEST(SimRuntime, BlockLoadChargesIoAndCacheHitsAreFree) {
  TestWorld w = testing::rotor_world(2);
  SimRuntime rt(config_for(1), &w.decomp(), w.source.get(),
                IntegratorParams{}, TraceLimits{});

  int loads_seen = 0;
  const RunMetrics m = rt.run([&](int, int) {
    auto p = std::make_unique<ScriptProgram>();
    p->on_start = [](ScriptProgram&, RankContext& ctx) {
      ctx.request_block(0);
    };
    p->on_block = [&loads_seen](ScriptProgram& self, RankContext& ctx,
                                BlockId id) {
      EXPECT_EQ(id, 0);
      ++loads_seen;
      EXPECT_TRUE(ctx.block_resident(0));
      EXPECT_NE(ctx.block(0), nullptr);
      if (loads_seen == 1) {
        ctx.request_block(0);  // hit: immediate, no extra I/O
      } else {
        self.done = true;
      }
    };
    return p;
  });

  EXPECT_EQ(loads_seen, 2);
  EXPECT_EQ(m.ranks[0].blocks_loaded, 1u);
  EXPECT_GT(m.ranks[0].io_time, 0.0);
  const double one_load = m.ranks[0].io_time;
  // Exactly one service time: latency + bytes/bw.
  EXPECT_DOUBLE_EQ(one_load,
                   test_model().io_service_seconds(w.source->block_bytes(0)));
}

TEST(SimRuntime, DuplicateRequestsCoalesce) {
  TestWorld w = testing::rotor_world(2);
  SimRuntime rt(config_for(1), &w.decomp(), w.source.get(),
                IntegratorParams{}, TraceLimits{});
  int notifications = 0;
  const RunMetrics m = rt.run([&](int, int) {
    auto p = std::make_unique<ScriptProgram>();
    p->on_start = [](ScriptProgram&, RankContext& ctx) {
      ctx.request_block(2);
      ctx.request_block(2);
      ctx.request_block(2);
      EXPECT_TRUE(ctx.block_pending(2));
    };
    p->on_block = [&notifications](ScriptProgram& self, RankContext&,
                                   BlockId) {
      ++notifications;
      self.done = true;
    };
    return p;
  });
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(m.ranks[0].blocks_loaded, 1u);
}

TEST(SimRuntime, ComputeBurstAdvancesClockAndBlocksReentry) {
  TestWorld w = testing::rotor_world(2);
  SimRuntime rt(config_for(1), &w.decomp(), w.source.get(),
                IntegratorParams{}, TraceLimits{});
  double done_at = -1.0;
  const RunMetrics m = rt.run([&](int, int) {
    auto p = std::make_unique<ScriptProgram>();
    p->on_start = [](ScriptProgram&, RankContext& ctx) {
      ctx.begin_compute(0.5, 1234);
      EXPECT_TRUE(ctx.busy());
      EXPECT_THROW(ctx.begin_compute(0.1, 1), std::logic_error);
    };
    p->on_done = [&done_at](ScriptProgram& self, RankContext& ctx) {
      EXPECT_FALSE(ctx.busy());
      done_at = ctx.now();
      self.done = true;
    };
    return p;
  });
  EXPECT_DOUBLE_EQ(done_at, 0.5);
  EXPECT_DOUBLE_EQ(m.ranks[0].compute_time, 0.5);
  EXPECT_EQ(m.ranks[0].steps, 1234u);
  EXPECT_DOUBLE_EQ(m.wall_clock, 0.5);
}

TEST(SimRuntime, OomAbortsRun) {
  TestWorld w = testing::rotor_world(2);
  SimRuntimeConfig cfg = config_for(1);
  cfg.model.particle_memory_bytes = 1000;
  SimRuntime rt(cfg, &w.decomp(), w.source.get(), IntegratorParams{},
                TraceLimits{});
  const RunMetrics m = rt.run([&](int, int) {
    auto p = std::make_unique<ScriptProgram>();
    p->on_start = [](ScriptProgram& self, RankContext& ctx) {
      ctx.charge_particle_memory(900);
      EXPECT_THROW(ctx.charge_particle_memory(200), SimAbort);
      self.done = true;  // unreachable in real programs; fine here
      throw SimAbort("re-raise");
    };
    return p;
  });
  EXPECT_TRUE(m.failed_oom);
  EXPECT_TRUE(m.ranks[0].oom);
  EXPECT_GE(m.ranks[0].peak_particle_bytes, 1100u);
}

TEST(SimRuntime, QuiescenceWithUnfinishedProgramIsAnError) {
  TestWorld w = testing::rotor_world(2);
  SimRuntime rt(config_for(1), &w.decomp(), w.source.get(),
                IntegratorParams{}, TraceLimits{});
  // A program that never finishes and never schedules anything.
  EXPECT_THROW(rt.run([&](int, int) { return std::make_unique<ScriptProgram>(); }),
               std::logic_error);
}

TEST(SimRuntime, ValidatesConfiguration) {
  TestWorld w = testing::rotor_world(2);
  SimRuntimeConfig bad = config_for(0);
  EXPECT_THROW(SimRuntime(bad, &w.decomp(), w.source.get(),
                          IntegratorParams{}, TraceLimits{}),
               std::invalid_argument);
  EXPECT_THROW(SimRuntime(config_for(1), nullptr, w.source.get(),
                          IntegratorParams{}, TraceLimits{}),
               std::invalid_argument);
}

TEST(SimRuntime, LruEvictionCountsPurges) {
  TestWorld w = testing::rotor_world(2);  // 8 blocks
  SimRuntimeConfig cfg = config_for(1);
  cfg.cache_blocks = 2;
  SimRuntime rt(cfg, &w.decomp(), w.source.get(), IntegratorParams{},
                TraceLimits{});
  const RunMetrics m = rt.run([&](int, int) {
    auto p = std::make_unique<ScriptProgram>();
    p->on_start = [](ScriptProgram&, RankContext& ctx) {
      ctx.request_block(0);
    };
    p->on_block = [](ScriptProgram& self, RankContext& ctx, BlockId id) {
      if (id < 4) {
        ctx.request_block(id + 1);
      } else {
        self.done = true;
      }
    };
    return p;
  });
  EXPECT_EQ(m.ranks[0].blocks_loaded, 5u);
  EXPECT_EQ(m.ranks[0].blocks_purged, 3u);
  EXPECT_DOUBLE_EQ(m.block_efficiency(), 2.0 / 5.0);
}

}  // namespace
}  // namespace sf
