// Golden bit-identity tests for the fast advection core.
//
// The fast path (GridSampler cell cursor, hand-unrolled DOPRI5 body,
// stage-one reuse, FSAL carry, per-block batching) is a pure codegen /
// scheduling change: every floating-point operation runs in the same
// order as the historical kernel.  These tests hold it to that claim
// with EXPECT_EQ on doubles — zero tolerance — across every analytic
// field, both integrators, and all three tracer entry points.
//
// Evaluation counts are deliberately NOT compared: the fast path
// legitimately performs fewer field evaluations (it reuses the
// stagnation-check sample as stage one and carries the FSAL stage
// across steps), which changes n_evals without changing any sampled
// value.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "core/analytic_fields.hpp"
#include "core/dataset.hpp"
#include "core/grid_sampler.hpp"
#include "core/integrator.hpp"
#include "core/structured_grid.hpp"
#include "core/tracer.hpp"

namespace sf {
namespace {

struct NamedField {
  const char* name;
  std::shared_ptr<VectorField> field;
};

std::vector<NamedField> all_fields() {
  return {
      {"uniform", std::make_shared<UniformField>()},
      {"rotor", std::make_shared<RotorField>()},
      {"saddle", std::make_shared<SaddleField>()},
      {"abc", std::make_shared<ABCField>()},
      {"hill", std::make_shared<HillVortexField>()},
      {"supernova", std::make_shared<SupernovaField>()},
      {"tokamak", std::make_shared<TokamakField>()},
      {"thermal", std::make_shared<ThermalHydraulicsField>()},
  };
}

// Deterministic seed spread: fractional positions of the box, away from
// the exact faces so every integrator has room for at least one stage.
std::vector<Vec3> spread_seeds(const AABB& box) {
  const double fr[9][3] = {{0.50, 0.50, 0.50}, {0.25, 0.50, 0.50},
                           {0.75, 0.40, 0.60}, {0.40, 0.25, 0.70},
                           {0.60, 0.75, 0.30}, {0.30, 0.60, 0.25},
                           {0.70, 0.30, 0.75}, {0.45, 0.65, 0.55},
                           {0.15, 0.85, 0.45}};
  std::vector<Vec3> seeds;
  const Vec3 e = box.extent();
  for (const auto& f : fr) {
    seeds.push_back({box.lo.x + f[0] * e.x, box.lo.y + f[1] * e.y,
                     box.lo.z + f[2] * e.z});
  }
  return seeds;
}

#define EXPECT_SAME_STEP(fast, ref)        \
  do {                                     \
    EXPECT_EQ((fast).status, (ref).status);\
    EXPECT_EQ((fast).p.x, (ref).p.x);      \
    EXPECT_EQ((fast).p.y, (ref).p.y);      \
    EXPECT_EQ((fast).p.z, (ref).p.z);      \
    EXPECT_EQ((fast).t, (ref).t);          \
    EXPECT_EQ((fast).h_used, (ref).h_used);\
    EXPECT_EQ((fast).h_next, (ref).h_next);\
  } while (0)

// Single DOPRI5 steps: cursor overload vs the historical kernel, and
// the stage-one-pre-supplied overload vs both.
TEST(FastPath, Dopri5StepBitIdenticalOnAllFields) {
  const IntegratorParams params;
  for (const NamedField& nf : all_fields()) {
    SCOPED_TRACE(nf.name);
    StructuredGrid grid(nf.field->bounds(), 25, 25, 25);
    grid.sample_from(*nf.field);
    GridSampler sampler(grid);
    for (const Vec3& seed : spread_seeds(grid.bounds())) {
      for (const double h : {1e-3, 1e-2, 0.1}) {
        const StepResult ref =
            dopri5_step_reference(grid, seed, 0.0, h, params);
        const StepResult fast = dopri5_step(sampler, seed, 0.0, h, params);
        EXPECT_SAME_STEP(fast, ref);

        // Stage-one reuse: hand the sampler's own value at the seed in.
        Vec3 v{};
        if (sampler.sample(seed, v)) {
          const StepResult pre =
              dopri5_step(sampler, v, seed, 0.0, h, params);
          EXPECT_SAME_STEP(pre, ref);
        }
      }
    }
  }
}

// Single RK4 steps: cursor overload vs the virtual-dispatch overload.
TEST(FastPath, Rk4StepBitIdenticalOnAllFields) {
  for (const NamedField& nf : all_fields()) {
    SCOPED_TRACE(nf.name);
    StructuredGrid grid(nf.field->bounds(), 25, 25, 25);
    grid.sample_from(*nf.field);
    GridSampler sampler(grid);
    for (const Vec3& seed : spread_seeds(grid.bounds())) {
      for (const double h : {1e-3, 1e-2, 0.1}) {
        const StepResult ref = rk4_step(grid, seed, 0.0, h);
        const StepResult fast = rk4_step(sampler, seed, 0.0, h);
        EXPECT_SAME_STEP(fast, ref);
      }
    }
  }
}

void expect_same_particle(const Particle& fast, const Particle& ref) {
  EXPECT_EQ(fast.status, ref.status);
  EXPECT_EQ(fast.steps, ref.steps);
  EXPECT_EQ(fast.pos.x, ref.pos.x);
  EXPECT_EQ(fast.pos.y, ref.pos.y);
  EXPECT_EQ(fast.pos.z, ref.pos.z);
  EXPECT_EQ(fast.time, ref.time);
  EXPECT_EQ(fast.h, ref.h);
}

// Whole trajectories: Tracer::advance (block cursor + cell cursor +
// FSAL carry) and Tracer::advance_batch (per-block rounds) against
// Tracer::advance_reference, on a multi-block dataset so trajectories
// cross block boundaries and invalidate the cursor along the way.
TEST(FastPath, TracerAdvanceBitIdenticalOnAllFields) {
  TraceLimits limits;
  limits.max_steps = 400;
  const IntegratorParams iparams;
  for (const NamedField& nf : all_fields()) {
    SCOPED_TRACE(nf.name);
    const BlockDecomposition decomp(nf.field->bounds(), 3, 3, 3);
    auto dataset =
        std::make_shared<BlockedDataset>(nf.field, decomp, 13, 2);
    std::vector<GridPtr> slots(
        static_cast<std::size_t>(dataset->num_blocks()));
    const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
      GridPtr& slot = slots[static_cast<std::size_t>(id)];
      if (!slot) slot = dataset->block(id);
      return slot.get();
    };
    const Tracer tracer(&decomp, iparams, limits);

    const std::vector<Vec3> seeds = spread_seeds(nf.field->bounds());
    std::vector<Particle> ref(seeds.size()), fast(seeds.size()),
        batch(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ref[i].id = fast[i].id = batch[i].id =
          static_cast<std::uint32_t>(i);
      ref[i].pos = fast[i].pos = batch[i].pos = seeds[i];
    }

    for (std::size_t i = 0; i < seeds.size(); ++i) {
      tracer.advance_reference(ref[i], access);
      tracer.advance(fast[i], access);
      SCOPED_TRACE(i);
      expect_same_particle(fast[i], ref[i]);
    }

    tracer.advance_batch(batch, access);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      SCOPED_TRACE(i);
      expect_same_particle(batch[i], ref[i]);
    }
  }
}

// The per-block batch schedule must not depend on input order: reversing
// the cohort changes the rounds but not any particle's result.
TEST(FastPath, BatchScheduleIndependentOfOrder) {
  auto field = std::make_shared<TokamakField>();
  const BlockDecomposition decomp(field->bounds(), 3, 3, 3);
  auto dataset = std::make_shared<BlockedDataset>(field, decomp, 13, 2);
  std::vector<GridPtr> slots(
      static_cast<std::size_t>(dataset->num_blocks()));
  const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
    GridPtr& slot = slots[static_cast<std::size_t>(id)];
    if (!slot) slot = dataset->block(id);
    return slot.get();
  };
  TraceLimits limits;
  limits.max_steps = 300;
  const Tracer tracer(&decomp, IntegratorParams{}, limits);

  const std::vector<Vec3> seeds = spread_seeds(field->bounds());
  std::vector<Particle> fwd(seeds.size()), rev(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    fwd[i].id = static_cast<std::uint32_t>(i);
    fwd[i].pos = seeds[i];
    const std::size_t j = seeds.size() - 1 - i;
    rev[i].id = static_cast<std::uint32_t>(j);
    rev[i].pos = seeds[j];
  }
  tracer.advance_batch(fwd, access);
  tracer.advance_batch(rev, access);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_particle(rev[seeds.size() - 1 - i], fwd[i]);
  }
}

}  // namespace
}  // namespace sf
