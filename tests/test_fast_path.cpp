// Golden bit-identity tests for the fast advection core.
//
// The fast path (GridSampler cell cursor, hand-unrolled DOPRI5 body,
// stage-one reuse, FSAL carry, per-block batching) is a pure codegen /
// scheduling change: every floating-point operation runs in the same
// order as the historical kernel.  These tests hold it to that claim
// with EXPECT_EQ on doubles — zero tolerance — across every analytic
// field, both integrators, and all three tracer entry points.
//
// Evaluation counts are deliberately NOT compared: the fast path
// legitimately performs fewer field evaluations (it reuses the
// stagnation-check sample as stage one and carries the FSAL stage
// across steps), which changes n_evals without changing any sampled
// value.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "core/analytic_fields.hpp"
#include "core/dataset.hpp"
#include "core/grid_sampler.hpp"
#include "core/integrator.hpp"
#include "core/structured_grid.hpp"
#include "core/tracer.hpp"

namespace sf {
namespace {

struct NamedField {
  const char* name;
  std::shared_ptr<VectorField> field;
};

std::vector<NamedField> all_fields() {
  return {
      {"uniform", std::make_shared<UniformField>()},
      {"rotor", std::make_shared<RotorField>()},
      {"saddle", std::make_shared<SaddleField>()},
      {"abc", std::make_shared<ABCField>()},
      {"hill", std::make_shared<HillVortexField>()},
      {"supernova", std::make_shared<SupernovaField>()},
      {"tokamak", std::make_shared<TokamakField>()},
      {"thermal", std::make_shared<ThermalHydraulicsField>()},
  };
}

// Deterministic seed spread: fractional positions of the box, away from
// the exact faces so every integrator has room for at least one stage.
std::vector<Vec3> spread_seeds(const AABB& box) {
  const double fr[9][3] = {{0.50, 0.50, 0.50}, {0.25, 0.50, 0.50},
                           {0.75, 0.40, 0.60}, {0.40, 0.25, 0.70},
                           {0.60, 0.75, 0.30}, {0.30, 0.60, 0.25},
                           {0.70, 0.30, 0.75}, {0.45, 0.65, 0.55},
                           {0.15, 0.85, 0.45}};
  std::vector<Vec3> seeds;
  const Vec3 e = box.extent();
  for (const auto& f : fr) {
    seeds.push_back({box.lo.x + f[0] * e.x, box.lo.y + f[1] * e.y,
                     box.lo.z + f[2] * e.z});
  }
  return seeds;
}

#define EXPECT_SAME_STEP(fast, ref)        \
  do {                                     \
    EXPECT_EQ((fast).status, (ref).status);\
    EXPECT_EQ((fast).p.x, (ref).p.x);      \
    EXPECT_EQ((fast).p.y, (ref).p.y);      \
    EXPECT_EQ((fast).p.z, (ref).p.z);      \
    EXPECT_EQ((fast).t, (ref).t);          \
    EXPECT_EQ((fast).h_used, (ref).h_used);\
    EXPECT_EQ((fast).h_next, (ref).h_next);\
  } while (0)

// Single DOPRI5 steps: cursor overload vs the historical kernel, and
// the stage-one-pre-supplied overload vs both.
TEST(FastPath, Dopri5StepBitIdenticalOnAllFields) {
  const IntegratorParams params;
  for (const NamedField& nf : all_fields()) {
    SCOPED_TRACE(nf.name);
    StructuredGrid grid(nf.field->bounds(), 25, 25, 25);
    grid.sample_from(*nf.field);
    GridSampler sampler(grid);
    for (const Vec3& seed : spread_seeds(grid.bounds())) {
      for (const double h : {1e-3, 1e-2, 0.1}) {
        const StepResult ref =
            dopri5_step_reference(grid, seed, 0.0, h, params);
        const StepResult fast = dopri5_step(sampler, seed, 0.0, h, params);
        EXPECT_SAME_STEP(fast, ref);

        // Stage-one reuse: hand the sampler's own value at the seed in.
        Vec3 v{};
        if (sampler.sample(seed, v)) {
          const StepResult pre =
              dopri5_step(sampler, v, seed, 0.0, h, params);
          EXPECT_SAME_STEP(pre, ref);
        }
      }
    }
  }
}

// Single RK4 steps: cursor overload vs the virtual-dispatch overload.
TEST(FastPath, Rk4StepBitIdenticalOnAllFields) {
  for (const NamedField& nf : all_fields()) {
    SCOPED_TRACE(nf.name);
    StructuredGrid grid(nf.field->bounds(), 25, 25, 25);
    grid.sample_from(*nf.field);
    GridSampler sampler(grid);
    for (const Vec3& seed : spread_seeds(grid.bounds())) {
      for (const double h : {1e-3, 1e-2, 0.1}) {
        const StepResult ref = rk4_step(grid, seed, 0.0, h);
        const StepResult fast = rk4_step(sampler, seed, 0.0, h);
        EXPECT_SAME_STEP(fast, ref);
      }
    }
  }
}

void expect_same_particle(const Particle& fast, const Particle& ref) {
  EXPECT_EQ(fast.status, ref.status);
  EXPECT_EQ(fast.steps, ref.steps);
  EXPECT_EQ(fast.pos.x, ref.pos.x);
  EXPECT_EQ(fast.pos.y, ref.pos.y);
  EXPECT_EQ(fast.pos.z, ref.pos.z);
  EXPECT_EQ(fast.time, ref.time);
  EXPECT_EQ(fast.h, ref.h);
}

// Whole trajectories: Tracer::advance (block cursor + cell cursor +
// FSAL carry) and Tracer::advance_batch (per-block rounds) against
// Tracer::advance_reference, on a multi-block dataset so trajectories
// cross block boundaries and invalidate the cursor along the way.
TEST(FastPath, TracerAdvanceBitIdenticalOnAllFields) {
  TraceLimits limits;
  limits.max_steps = 400;
  const IntegratorParams iparams;
  for (const NamedField& nf : all_fields()) {
    SCOPED_TRACE(nf.name);
    const BlockDecomposition decomp(nf.field->bounds(), 3, 3, 3);
    auto dataset =
        std::make_shared<BlockedDataset>(nf.field, decomp, 13, 2);
    std::vector<GridPtr> slots(
        static_cast<std::size_t>(dataset->num_blocks()));
    const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
      GridPtr& slot = slots[static_cast<std::size_t>(id)];
      if (!slot) slot = dataset->block(id);
      return slot.get();
    };
    const Tracer tracer(&decomp, iparams, limits);

    const std::vector<Vec3> seeds = spread_seeds(nf.field->bounds());
    std::vector<Particle> ref(seeds.size()), fast(seeds.size()),
        batch(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ref[i].id = fast[i].id = batch[i].id =
          static_cast<std::uint32_t>(i);
      ref[i].pos = fast[i].pos = batch[i].pos = seeds[i];
    }

    for (std::size_t i = 0; i < seeds.size(); ++i) {
      tracer.advance_reference(ref[i], access);
      tracer.advance(fast[i], access);
      SCOPED_TRACE(i);
      expect_same_particle(fast[i], ref[i]);
    }

    tracer.advance_batch(batch, access);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      SCOPED_TRACE(i);
      expect_same_particle(batch[i], ref[i]);
    }
  }
}

// The per-block batch schedule must not depend on input order: reversing
// the cohort changes the rounds but not any particle's result.
TEST(FastPath, BatchScheduleIndependentOfOrder) {
  auto field = std::make_shared<TokamakField>();
  const BlockDecomposition decomp(field->bounds(), 3, 3, 3);
  auto dataset = std::make_shared<BlockedDataset>(field, decomp, 13, 2);
  std::vector<GridPtr> slots(
      static_cast<std::size_t>(dataset->num_blocks()));
  const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
    GridPtr& slot = slots[static_cast<std::size_t>(id)];
    if (!slot) slot = dataset->block(id);
    return slot.get();
  };
  TraceLimits limits;
  limits.max_steps = 300;
  const Tracer tracer(&decomp, IntegratorParams{}, limits);

  const std::vector<Vec3> seeds = spread_seeds(field->bounds());
  std::vector<Particle> fwd(seeds.size()), rev(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    fwd[i].id = static_cast<std::uint32_t>(i);
    fwd[i].pos = seeds[i];
    const std::size_t j = seeds.size() - 1 - i;
    rev[i].id = static_cast<std::uint32_t>(j);
    rev[i].pos = seeds[j];
  }
  tracer.advance_batch(fwd, access);
  tracer.advance_batch(rev, access);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_particle(rev[seeds.size() - 1 - i], fwd[i]);
  }
}

// ---------------------------------------------------------------------------
// SIMD kernel (integrator_simd.cpp): forced-kernel golden tests.
//
// Unlike the fast-vs-reference comparisons above, scalar-vs-simd is held
// to FULL equality — including evaluation counts: both run the identical
// stage-one-reuse/FSAL algorithm, so n_evals must match exactly, and a
// mismatch would mean a lane attempted a different stage sequence.
// ---------------------------------------------------------------------------

// Recorded geometry per particle id, for polyline comparison.
std::vector<std::vector<Vec3>> traced_lines(
    const Tracer& tracer, std::span<Particle> particles,
    const BlockAccessFn& access, std::vector<AdvanceOutcome>& outcomes) {
  PolylineRecorder rec(particles.size());
  outcomes = tracer.advance_batch(particles, access, &rec);
  return rec.lines();
}

TEST(FastPath, SimdBatchBitIdenticalOnAllFields) {
  if (!simd_kernel_available()) {
    GTEST_SKIP() << "AVX2 kernel not available on this host";
  }
  TraceLimits limits;
  limits.max_steps = 400;
  const IntegratorParams iparams;
  for (const NamedField& nf : all_fields()) {
    SCOPED_TRACE(nf.name);
    const BlockDecomposition decomp(nf.field->bounds(), 3, 3, 3);
    auto dataset = std::make_shared<BlockedDataset>(nf.field, decomp, 13, 2);
    std::vector<GridPtr> slots(
        static_cast<std::size_t>(dataset->num_blocks()));
    const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
      GridPtr& slot = slots[static_cast<std::size_t>(id)];
      if (!slot) slot = dataset->block(id);
      return slot.get();
    };
    Tracer scalar_tracer(&decomp, iparams, limits);
    scalar_tracer.set_kernel(AdvectionKernel::kScalar);
    Tracer simd_tracer(&decomp, iparams, limits);
    simd_tracer.set_kernel(AdvectionKernel::kSimd);

    const std::vector<Vec3> seeds = spread_seeds(nf.field->bounds());
    std::vector<Particle> sp(seeds.size()), vp(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      sp[i].id = vp[i].id = static_cast<std::uint32_t>(i);
      sp[i].pos = vp[i].pos = seeds[i];
    }

    std::vector<AdvanceOutcome> so, vo;
    const auto scalar_lines = traced_lines(scalar_tracer, sp, access, so);
    const auto simd_lines = traced_lines(simd_tracer, vp, access, vo);

    for (std::size_t i = 0; i < seeds.size(); ++i) {
      SCOPED_TRACE(i);
      expect_same_particle(vp[i], sp[i]);
      EXPECT_EQ(vp[i].geometry_points, sp[i].geometry_points);
      EXPECT_EQ(vo[i].status, so[i].status);
      EXPECT_EQ(vo[i].blocking_block, so[i].blocking_block);
      EXPECT_EQ(vo[i].steps, so[i].steps);
      EXPECT_EQ(vo[i].evals, so[i].evals) << "lane attempted a different "
                                             "stage sequence";
      ASSERT_EQ(simd_lines[i].size(), scalar_lines[i].size());
      for (std::size_t v = 0; v < simd_lines[i].size(); ++v) {
        EXPECT_EQ(simd_lines[i][v].x, scalar_lines[i][v].x);
        EXPECT_EQ(simd_lines[i][v].y, scalar_lines[i][v].y);
        EXPECT_EQ(simd_lines[i][v].z, scalar_lines[i][v].z);
      }
    }
  }
}

// Partial lane groups: cohorts of 1..3 force masked lanes through the
// whole trial loop (no fourth particle to load), and cohorts of 5
// exercise lane refill mid-round.  Forced kSimd runs them regardless of
// the kAuto width threshold.
TEST(FastPath, SimdPartialCohortsMatchScalar) {
  if (!simd_kernel_available()) {
    GTEST_SKIP() << "AVX2 kernel not available on this host";
  }
  auto field = std::make_shared<ABCField>();
  const BlockDecomposition decomp(field->bounds(), 2, 2, 2);
  auto dataset = std::make_shared<BlockedDataset>(field, decomp, 13, 2);
  std::vector<GridPtr> slots(static_cast<std::size_t>(dataset->num_blocks()));
  const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
    GridPtr& slot = slots[static_cast<std::size_t>(id)];
    if (!slot) slot = dataset->block(id);
    return slot.get();
  };
  TraceLimits limits;
  limits.max_steps = 200;
  Tracer scalar_tracer(&decomp, IntegratorParams{}, limits);
  scalar_tracer.set_kernel(AdvectionKernel::kScalar);
  Tracer simd_tracer(&decomp, IntegratorParams{}, limits);
  simd_tracer.set_kernel(AdvectionKernel::kSimd);

  const std::vector<Vec3> all_seeds = spread_seeds(field->bounds());
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{5}, std::size_t{9}}) {
    SCOPED_TRACE(n);
    std::vector<Particle> sp(n), vp(n);
    for (std::size_t i = 0; i < n; ++i) {
      sp[i].id = vp[i].id = static_cast<std::uint32_t>(i);
      sp[i].pos = vp[i].pos = all_seeds[i % all_seeds.size()];
    }
    const auto so = scalar_tracer.advance_batch(sp, access);
    const auto vo = simd_tracer.advance_batch(vp, access);
    for (std::size_t i = 0; i < n; ++i) {
      SCOPED_TRACE(i);
      expect_same_particle(vp[i], sp[i]);
      EXPECT_EQ(vo[i].evals, so[i].evals);
      EXPECT_EQ(vo[i].steps, so[i].steps);
    }
  }
}

// Forcing kSimd must never crash, even where the AVX2 kernel is absent
// or the host lacks the instructions: dispatch degrades to scalar.
TEST(FastPath, ForcedSimdFallsBackWithoutAvx2) {
  auto field = std::make_shared<RotorField>();
  const BlockDecomposition decomp(field->bounds(), 2, 2, 2);
  auto dataset = std::make_shared<BlockedDataset>(field, decomp, 13, 2);
  std::vector<GridPtr> slots(static_cast<std::size_t>(dataset->num_blocks()));
  const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
    GridPtr& slot = slots[static_cast<std::size_t>(id)];
    if (!slot) slot = dataset->block(id);
    return slot.get();
  };
  TraceLimits limits;
  limits.max_steps = 100;
  Tracer tracer(&decomp, IntegratorParams{}, limits);
  tracer.set_kernel(AdvectionKernel::kSimd);
  EXPECT_EQ(tracer.kernel(), AdvectionKernel::kSimd);

  std::vector<Particle> particles(4);
  const std::vector<Vec3> seeds = spread_seeds(field->bounds());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles[i].id = static_cast<std::uint32_t>(i);
    particles[i].pos = seeds[i];
  }
  const auto outcomes = tracer.advance_batch(particles, access);
  for (const Particle& p : particles) {
    EXPECT_TRUE(is_terminal(p.status));
  }
  EXPECT_EQ(outcomes.size(), particles.size());
}

}  // namespace
}  // namespace sf
