#include "analysis/poincare.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

TEST(Poincare, RotorCrossesPlaneOncePerTurn) {
  // Circular orbit of period 2*pi crossing the y = 0 half-plane x > 0
  // once per revolution, always at the same point.
  const RotorField field;
  PoincareParams prm;
  prm.plane_point = {0, 0, 0};
  prm.plane_normal = {0, 1, 0};
  prm.accept = [](const Vec3& p) { return p.x > 0; };
  prm.max_crossings = 10;
  prm.limits.max_time = 100.0;
  prm.integrator.tol = 1e-9;

  const auto hits = poincare_punctures(field, {1, 0, 0.2}, prm);
  ASSERT_EQ(hits.size(), 10u);
  for (const Vec3& h : hits) {
    EXPECT_NEAR(h.x, 1.0, 1e-4);
    EXPECT_NEAR(h.y, 0.0, 1e-6);
    EXPECT_NEAR(h.z, 0.2, 1e-6);
  }
}

TEST(Poincare, BothDirectionsDoublesCrossings) {
  const RotorField field;
  PoincareParams prm;
  prm.plane_normal = {0, 1, 0};
  prm.positive_direction_only = false;
  prm.max_crossings = 8;
  prm.limits.max_time = 50.0;
  const auto hits = poincare_punctures(field, {1, 0, 0}, prm);
  ASSERT_EQ(hits.size(), 8u);
  // Alternating sides of the circle.
  EXPECT_NEAR(hits[0].x, -1.0, 1e-3);
  EXPECT_NEAR(hits[1].x, 1.0, 1e-3);
}

TEST(Poincare, SeedOutsideDomainYieldsNothing) {
  const RotorField field;
  PoincareParams prm;
  EXPECT_TRUE(poincare_punctures(field, {99, 0, 0}, prm).empty());
}

TEST(Poincare, UnperturbedTokamakStaysOnFluxSurface) {
  // Without islands, field lines live on nested flux surfaces: every
  // puncture of the phi = 0 half-plane lies at (nearly) the same minor
  // radius.
  TokamakParams tparams;
  tparams.island_amplitude = 0.0;
  const TokamakField field(tparams);

  PoincareParams prm;
  prm.plane_point = {0, 0, 0};
  prm.plane_normal = {0, 1, 0};
  prm.accept = [](const Vec3& p) { return p.x > 0; };
  prm.max_crossings = 40;
  prm.limits.max_time = 4000.0;
  prm.limits.max_steps = 400000;
  prm.integrator.tol = 1e-9;

  const Vec3 seed{1.2, 0.0, 0.0};  // r = 0.2 surface
  const auto hits = poincare_punctures(field, seed, prm);
  ASSERT_GE(hits.size(), 20u);
  for (const Vec3& h : hits) {
    const double r = std::hypot(std::hypot(h.x, h.y) - 1.0, h.z);
    EXPECT_NEAR(r, 0.2, 5e-3) << "puncture off its flux surface at " << h;
  }
}

TEST(Poincare, PerturbedTokamakSpreadsPunctures) {
  // With a resonant perturbation, lines seeded in the island/chaotic
  // layer wander in minor radius — the §5.2 "streamlines can diverge
  // strongly" behaviour.
  TokamakParams tparams;
  tparams.island_amplitude = 0.08;
  const TokamakField field(tparams);

  PoincareParams prm;
  prm.plane_normal = {0, 1, 0};
  prm.accept = [](const Vec3& p) { return p.x > 0; };
  prm.max_crossings = 60;
  prm.limits.max_time = 8000.0;
  prm.limits.max_steps = 800000;

  const Vec3 seed{1.27, 0.0, 0.0};  // near the resonant surface
  const auto hits = poincare_punctures(field, seed, prm);
  ASSERT_GE(hits.size(), 30u);
  double rmin = 1e300, rmax = -1e300;
  for (const Vec3& h : hits) {
    const double r = std::hypot(std::hypot(h.x, h.y) - 1.0, h.z);
    rmin = std::min(rmin, r);
    rmax = std::max(rmax, r);
  }
  EXPECT_GT(rmax - rmin, 0.01);
}

TEST(Poincare, RespectsMaxCrossings) {
  const RotorField field;
  PoincareParams prm;
  prm.plane_normal = {0, 1, 0};
  prm.max_crossings = 3;
  prm.limits.max_time = 1000.0;
  EXPECT_EQ(poincare_punctures(field, {1, 0, 0}, prm).size(), 3u);
}

}  // namespace
}  // namespace sf
