#include "algorithms/hybrid.hpp"

#include <gtest/gtest.h>

#include "algorithms/driver.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

TEST(HybridLayout, MastersPerW) {
  const HybridLayout l = HybridLayout::make(33, 32);
  EXPECT_EQ(l.num_masters, 1);
  EXPECT_EQ(l.num_slaves(), 32);

  const HybridLayout big = HybridLayout::make(66, 32);
  EXPECT_EQ(big.num_masters, 2);
  EXPECT_EQ(big.num_slaves(), 64);

  // Even tiny allocations keep at least one master and one slave.
  const HybridLayout tiny = HybridLayout::make(2, 32);
  EXPECT_EQ(tiny.num_masters, 1);
  EXPECT_EQ(tiny.num_slaves(), 1);
}

TEST(HybridLayout, SlaveGroupsPartition) {
  const HybridLayout l = HybridLayout::make(40, 8);
  int covered = 0;
  for (int m = 0; m < l.num_masters; ++m) {
    const auto [first, last] = l.slaves_of(m);
    EXPECT_GE(first, l.num_masters);
    EXPECT_LE(last, l.num_ranks);
    for (int s = first; s < last; ++s) {
      EXPECT_EQ(l.master_of(s), m);
      ++covered;
    }
  }
  EXPECT_EQ(covered, l.num_slaves());
}

TEST(HybridLayout, Validation) {
  EXPECT_THROW(HybridLayout::make(1, 32), std::invalid_argument);
  EXPECT_THROW(HybridLayout::make(8, 0), std::invalid_argument);
}

TEST(PartitionForMasters, EqualChunks) {
  std::vector<Particle> ps(10);
  for (int i = 0; i < 10; ++i) ps[static_cast<std::size_t>(i)].id = i;
  const auto parts = partition_for_masters(3, std::move(ps));
  ASSERT_EQ(parts.size(), 3u);
  // Balanced contiguous split of 10 over 3: 3 + 3 + 4.
  EXPECT_EQ(parts[0].size(), 3u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 4u);
}

TEST(Hybrid, AllParticlesTerminate) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(7);
  const auto seeds = random_seeds(w.dataset->bounds(), 50, rng);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 6);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  ASSERT_EQ(m.particles.size(), seeds.size());
  for (const Particle& p : m.particles) EXPECT_TRUE(is_terminal(p.status));
}

TEST(Hybrid, MastersDoNotCompute) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(9);
  const auto seeds = random_seeds(w.dataset->bounds(), 30, rng);
  auto cfg = test_config(Algorithm::kHybridMasterSlave, 6);
  const HybridLayout layout =
      HybridLayout::make(6, cfg.hybrid.slaves_per_master);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  for (int r = 0; r < layout.num_masters; ++r) {
    EXPECT_EQ(m.ranks[static_cast<std::size_t>(r)].steps, 0u);
    EXPECT_EQ(m.ranks[static_cast<std::size_t>(r)].blocks_loaded, 0u);
  }
  // Masters do communicate.
  EXPECT_GT(m.ranks[0].messages_sent, 0u);
}

TEST(Hybrid, WorkSpreadsAcrossSlaves) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(13);
  const auto seeds = random_seeds(w.dataset->bounds(), 80, rng);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 6);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  int slaves_used = 0;
  for (std::size_t r = 1; r < m.ranks.size(); ++r) {
    if (m.ranks[r].steps > 0) ++slaves_used;
  }
  EXPECT_GE(slaves_used, 3);
}

TEST(Hybrid, DenseClusterDoesNotOomWhereStaticDoes) {
  // The headline adaptive behaviour: the same configuration that kills
  // Static Allocation (dense seeds on one owner) completes under the
  // hybrid because the master doles work out in batches of N.
  auto w = sf::testing::rotor_world(2);
  Rng rng(5);
  const auto seeds =
      cluster_seeds({1.0, 1.0, 1.0}, 0.05, 400, rng, w.dataset->bounds());

  auto cfg = test_config(Algorithm::kStaticAllocation, 6);
  cfg.runtime.model.particle_memory_bytes = 64 << 10;
  const RunMetrics st = run_experiment(cfg, w.decomp(), *w.source, seeds);
  EXPECT_TRUE(st.failed_oom);

  cfg.algorithm = Algorithm::kHybridMasterSlave;
  // Masters hold the full seed pool; give them room for the pool itself
  // but far less than static's per-rank blow-up needed.
  cfg.runtime.model.particle_memory_bytes = 2u << 20;
  const RunMetrics hy = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(hy.failed_oom);
  EXPECT_EQ(hy.particles.size(), seeds.size());
}

TEST(Hybrid, MultipleMastersBalanceSeeds) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(21);
  const auto seeds = random_seeds(w.dataset->bounds(), 60, rng);
  auto cfg = test_config(Algorithm::kHybridMasterSlave, 10);
  cfg.hybrid.slaves_per_master = 4;  // forces 2 masters
  const HybridLayout layout = HybridLayout::make(10, 4);
  ASSERT_EQ(layout.num_masters, 2);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.particles.size(), seeds.size());
}

TEST(Hybrid, AssignBatchSizeIsBehaviorPreserving) {
  // N changes scheduling granularity only: any batch size yields the
  // same terminated streamlines, bit for bit.
  auto w = sf::testing::rotor_world(2);
  Rng rng(31);
  const auto seeds = random_seeds(w.dataset->bounds(), 100, rng);

  std::vector<Particle> reference;
  for (const int n : {1, 10, 50}) {
    auto cfg = test_config(Algorithm::kHybridMasterSlave, 4);
    cfg.hybrid.assign_batch = n;
    const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
    ASSERT_FALSE(m.failed_oom);
    ASSERT_EQ(m.particles.size(), seeds.size()) << "N=" << n;
    if (reference.empty()) {
      reference = m.particles;
      continue;
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].steps, m.particles[i].steps) << "N=" << n;
      EXPECT_EQ(reference[i].pos.x, m.particles[i].pos.x) << "N=" << n;
    }
  }
}

TEST(Hybrid, TwoRanksMinimumWorks) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(41);
  const auto seeds = random_seeds(w.dataset->bounds(), 10, rng);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 2);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.particles.size(), 10u);
}

TEST(Hybrid, EmptySeedSetTerminates) {
  auto w = sf::testing::rotor_world(2);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 4);
  const RunMetrics m =
      run_experiment(cfg, w.decomp(), *w.source, std::span<const Vec3>{});
  EXPECT_FALSE(m.failed_oom);
  EXPECT_TRUE(m.particles.empty());
}

}  // namespace
}  // namespace sf
