#include "algorithms/hybrid.hpp"

#include <gtest/gtest.h>

#include "algorithms/driver.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

TEST(HybridLayout, MastersPerW) {
  const HybridLayout l = HybridLayout::make(33, 32);
  EXPECT_EQ(l.num_masters, 1);
  EXPECT_EQ(l.num_slaves(), 32);

  const HybridLayout big = HybridLayout::make(66, 32);
  EXPECT_EQ(big.num_masters, 2);
  EXPECT_EQ(big.num_slaves(), 64);

  // Even tiny allocations keep at least one master and one slave.
  const HybridLayout tiny = HybridLayout::make(2, 32);
  EXPECT_EQ(tiny.num_masters, 1);
  EXPECT_EQ(tiny.num_slaves(), 1);
}

TEST(HybridLayout, SlaveGroupsPartition) {
  const HybridLayout l = HybridLayout::make(40, 8);
  int covered = 0;
  for (int m = 0; m < l.num_masters; ++m) {
    const auto [first, last] = l.slaves_of(m);
    EXPECT_GE(first, l.num_masters);
    EXPECT_LE(last, l.num_ranks);
    for (int s = first; s < last; ++s) {
      EXPECT_EQ(l.master_of(s), m);
      ++covered;
    }
  }
  EXPECT_EQ(covered, l.num_slaves());
}

TEST(HybridLayout, Validation) {
  EXPECT_THROW(HybridLayout::make(1, 32), std::invalid_argument);
  EXPECT_THROW(HybridLayout::make(8, 0), std::invalid_argument);
}

TEST(HybridLayout, NonDivisibleGroupsDifferByAtMostOne) {
  // 23 ranks at W=4: 4 masters, 19 slaves — groups of 4 or 5, never
  // worse, and the contiguous split covers every slave exactly once.
  const HybridLayout l = HybridLayout::make(23, 4);
  ASSERT_EQ(l.num_masters, 4);
  for (int m = 0; m < l.num_masters; ++m) {
    const auto [first, last] = l.slaves_of(m);
    EXPECT_GE(last - first, 4) << "master " << m;
    EXPECT_LE(last - first, 5) << "master " << m;
  }
}

TEST(HybridLayout, ClampsMastersForExtremeW) {
  // W far beyond the rank count still yields one master, one+ slaves.
  const HybridLayout wide = HybridLayout::make(3, 1000);
  EXPECT_EQ(wide.num_masters, 1);
  EXPECT_EQ(wide.num_slaves(), 2);
  // W = 1 wants a master per slave; the clamp keeps at least one slave.
  const HybridLayout narrow = HybridLayout::make(2, 1);
  EXPECT_EQ(narrow.num_masters, 1);
  EXPECT_EQ(narrow.num_slaves(), 1);
}

TEST(HybridLayout, FlatWhenFanoutNotExceeded) {
  // 40 ranks at W=8 is 4 masters; a fanout of 100 never engages the tree
  // and the layout is field-for-field the two-arg (flat) one.
  const HybridLayout l = HybridLayout::make(40, 8, 100);
  const HybridLayout flat = HybridLayout::make(40, 8);
  EXPECT_EQ(l.num_roots, 0);
  EXPECT_EQ(l.num_masters, flat.num_masters);
  for (int s = l.num_masters; s < l.num_ranks; ++s) {
    EXPECT_EQ(l.master_of(s), flat.master_of(s));
  }
}

TEST(HybridLayout, DefaultFanoutKeepsPaperScalesFlat) {
  // The <= 512-rank bit-identity contract is structural: at the default
  // W=32 / fanout=32 the root tier only appears past ~1K ranks.
  for (const int ranks : {64, 128, 512, 1056}) {
    EXPECT_EQ(HybridLayout::make(ranks, 32, 32).num_roots, 0) << ranks;
  }
  EXPECT_GT(HybridLayout::make(2048, 32, 32).num_roots, 0);
  EXPECT_GT(HybridLayout::make(16384, 32, 32).num_roots, 0);
}

TEST(HybridLayout, TreeTierPartitionsAndInverts) {
  const HybridLayout l = HybridLayout::make(4096, 32, 32);
  ASSERT_GT(l.num_roots, 0);
  EXPECT_EQ(l.num_masters, l.num_roots + l.num_leaves());
  // Roots own no slave group.
  for (int r = 0; r < l.num_roots; ++r) {
    const auto [first, last] = l.slaves_of(r);
    EXPECT_EQ(first, last) << "root " << r;
  }
  // leaves_of partitions the leaf tier; root_of inverts it; no subtree
  // exceeds the fanout.
  int covered = 0;
  for (int r = 0; r < l.num_roots; ++r) {
    const auto [first, last] = l.leaves_of(r);
    EXPECT_GE(first, l.num_roots);
    EXPECT_LE(last, l.num_masters);
    EXPECT_LE(last - first, 32) << "root " << r;
    for (int m = first; m < last; ++m) {
      EXPECT_EQ(l.root_of(m), r);
      ++covered;
    }
  }
  EXPECT_EQ(covered, l.num_leaves());
  // Slaves map to leaf masters only, covering every slave exactly once.
  covered = 0;
  for (int m = l.num_roots; m < l.num_masters; ++m) {
    const auto [first, last] = l.slaves_of(m);
    for (int s = first; s < last; ++s) {
      EXPECT_EQ(l.master_of(s), m);
      ++covered;
    }
  }
  EXPECT_EQ(covered, l.num_slaves());
}

TEST(HybridLayout, TreeStaysFlatWhenRootsWouldStarveSlaves) {
  // 4 ranks at W=1 is 2 flat masters; fanout 1 would want 2 roots, which
  // leaves no slaves at all — the tree must decline and stay flat.
  const HybridLayout l = HybridLayout::make(4, 1, 1);
  EXPECT_EQ(l.num_roots, 0);
  EXPECT_EQ(l.num_masters, 2);
  EXPECT_EQ(l.num_slaves(), 2);
}

TEST(PartitionForMasters, EqualChunks) {
  std::vector<Particle> ps(10);
  for (int i = 0; i < 10; ++i) ps[static_cast<std::size_t>(i)].id = i;
  const auto parts = partition_for_masters(3, std::move(ps));
  ASSERT_EQ(parts.size(), 3u);
  // Balanced contiguous split of 10 over 3: 3 + 3 + 4.
  EXPECT_EQ(parts[0].size(), 3u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 4u);
}

TEST(Hybrid, AllParticlesTerminate) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(7);
  const auto seeds = random_seeds(w.dataset->bounds(), 50, rng);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 6);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  ASSERT_EQ(m.particles.size(), seeds.size());
  for (const Particle& p : m.particles) EXPECT_TRUE(is_terminal(p.status));
}

TEST(Hybrid, MastersDoNotCompute) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(9);
  const auto seeds = random_seeds(w.dataset->bounds(), 30, rng);
  auto cfg = test_config(Algorithm::kHybridMasterSlave, 6);
  const HybridLayout layout =
      HybridLayout::make(6, cfg.hybrid.slaves_per_master);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  for (int r = 0; r < layout.num_masters; ++r) {
    EXPECT_EQ(m.ranks[static_cast<std::size_t>(r)].steps, 0u);
    EXPECT_EQ(m.ranks[static_cast<std::size_t>(r)].blocks_loaded, 0u);
  }
  // Masters do communicate.
  EXPECT_GT(m.ranks[0].messages_sent, 0u);
}

TEST(Hybrid, WorkSpreadsAcrossSlaves) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(13);
  const auto seeds = random_seeds(w.dataset->bounds(), 80, rng);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 6);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  int slaves_used = 0;
  for (std::size_t r = 1; r < m.ranks.size(); ++r) {
    if (m.ranks[r].steps > 0) ++slaves_used;
  }
  EXPECT_GE(slaves_used, 3);
}

TEST(Hybrid, DenseClusterDoesNotOomWhereStaticDoes) {
  // The headline adaptive behaviour: the same configuration that kills
  // Static Allocation (dense seeds on one owner) completes under the
  // hybrid because the master doles work out in batches of N.
  auto w = sf::testing::rotor_world(2);
  Rng rng(5);
  const auto seeds =
      cluster_seeds({1.0, 1.0, 1.0}, 0.05, 400, rng, w.dataset->bounds());

  auto cfg = test_config(Algorithm::kStaticAllocation, 6);
  cfg.runtime.model.particle_memory_bytes = 64 << 10;
  const RunMetrics st = run_experiment(cfg, w.decomp(), *w.source, seeds);
  EXPECT_TRUE(st.failed_oom);

  cfg.algorithm = Algorithm::kHybridMasterSlave;
  // Masters hold the full seed pool; give them room for the pool itself
  // but far less than static's per-rank blow-up needed.
  cfg.runtime.model.particle_memory_bytes = 2u << 20;
  const RunMetrics hy = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(hy.failed_oom);
  EXPECT_EQ(hy.particles.size(), seeds.size());
}

TEST(Hybrid, MultipleMastersBalanceSeeds) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(21);
  const auto seeds = random_seeds(w.dataset->bounds(), 60, rng);
  auto cfg = test_config(Algorithm::kHybridMasterSlave, 10);
  cfg.hybrid.slaves_per_master = 4;  // forces 2 masters
  const HybridLayout layout = HybridLayout::make(10, 4);
  ASSERT_EQ(layout.num_masters, 2);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.particles.size(), seeds.size());
}

TEST(Hybrid, AssignBatchSizeIsBehaviorPreserving) {
  // N changes scheduling granularity only: any batch size yields the
  // same terminated streamlines, bit for bit.
  auto w = sf::testing::rotor_world(2);
  Rng rng(31);
  const auto seeds = random_seeds(w.dataset->bounds(), 100, rng);

  std::vector<Particle> reference;
  for (const int n : {1, 10, 50}) {
    auto cfg = test_config(Algorithm::kHybridMasterSlave, 4);
    cfg.hybrid.assign_batch = n;
    const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
    ASSERT_FALSE(m.failed_oom);
    ASSERT_EQ(m.particles.size(), seeds.size()) << "N=" << n;
    if (reference.empty()) {
      reference = m.particles;
      continue;
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].steps, m.particles[i].steps) << "N=" << n;
      EXPECT_EQ(reference[i].pos.x, m.particles[i].pos.x) << "N=" << n;
    }
  }
}

TEST(Hybrid, TreeLayoutIsBehaviorPreserving) {
  // The master tree moves coordination traffic, never integration work:
  // a run with a root tier terminates the same streamlines, bit for
  // bit, as the flat layout at the same rank count.  13 ranks at W=2 /
  // fanout=2 gives roots {0, 1}, leaf masters {2..5}, slaves {6..12}.
  auto w = sf::testing::rotor_world(2);
  Rng rng(53);
  const auto seeds = random_seeds(w.dataset->bounds(), 60, rng);

  auto flat_cfg = test_config(Algorithm::kHybridMasterSlave, 13);
  flat_cfg.hybrid.slaves_per_master = 2;
  flat_cfg.hybrid.root_fanout = 0;  // force flat
  const RunMetrics flat = run_experiment(flat_cfg, w.decomp(), *w.source,
                                         seeds);
  ASSERT_FALSE(flat.failed_oom);
  ASSERT_EQ(flat.particles.size(), seeds.size());

  auto tree_cfg = flat_cfg;
  tree_cfg.hybrid.root_fanout = 2;
  ASSERT_EQ(HybridLayout::make(13, 2, 2).num_roots, 2);
  const RunMetrics tree = run_experiment(tree_cfg, w.decomp(), *w.source,
                                         seeds);
  ASSERT_FALSE(tree.failed_oom);
  ASSERT_EQ(tree.particles.size(), seeds.size());

  for (std::size_t i = 0; i < flat.particles.size(); ++i) {
    EXPECT_EQ(flat.particles[i].id, tree.particles[i].id) << "i=" << i;
    EXPECT_EQ(flat.particles[i].steps, tree.particles[i].steps) << "i=" << i;
    EXPECT_EQ(flat.particles[i].pos.x, tree.particles[i].pos.x) << "i=" << i;
  }
  // Roots coordinate; they never integrate a streamline themselves.
  EXPECT_EQ(tree.ranks[0].steps, 0u);
  EXPECT_EQ(tree.ranks[1].steps, 0u);
}

TEST(Hybrid, TwoRanksMinimumWorks) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(41);
  const auto seeds = random_seeds(w.dataset->bounds(), 10, rng);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 2);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.particles.size(), 10u);
}

TEST(Hybrid, EmptySeedSetTerminates) {
  auto w = sf::testing::rotor_world(2);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 4);
  const RunMetrics m =
      run_experiment(cfg, w.decomp(), *w.source, std::span<const Vec3>{});
  EXPECT_FALSE(m.failed_oom);
  EXPECT_TRUE(m.particles.empty());
}

}  // namespace
}  // namespace sf
