// Streamline service on the real-thread runtime (DESIGN.md §12): the
// equivalence gate must hold there too — a query through the service is
// bit-identical to a standalone run_experiment_threads of its seeds —
// including under schedule-perturbation fuzzing, and epoch-boundary
// cancellation drains a query's particles as kCancelled.

#include <gtest/gtest.h>

#include <vector>

#include "service/service.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

void expect_same_particles(const std::vector<Particle>& a,
                           const std::vector<Particle>& b,
                           const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " i=" << i;
    EXPECT_EQ(a[i].status, b[i].status) << label << " i=" << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.x, b[i].pos.x) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.y, b[i].pos.y) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.z, b[i].pos.z) << label << " i=" << i;
    EXPECT_EQ(a[i].time, b[i].time) << label << " i=" << i;
  }
}

ServiceConfig thread_service_config(Algorithm algo, int ranks) {
  ServiceConfig sc;
  sc.base = test_config(algo, ranks);
  sc.base.limits.max_steps = 500;
  sc.base.limits.max_time = 8.0;
  sc.use_thread_runtime = true;
  return sc;
}

std::vector<Vec3> seeds_for(const sf::testing::TestWorld& w, int n,
                            std::uint64_t seed) {
  Rng rng(seed);
  return random_seeds(w.dataset->bounds(), n, rng);
}

class ThreadServiceEquivalence : public ::testing::TestWithParam<Algorithm> {
};

TEST_P(ThreadServiceEquivalence, SingleQueryMatchesStandaloneThreads) {
  const Algorithm algo = GetParam();
  auto w = sf::testing::abc_world(2);
  const auto seeds = seeds_for(w, 18, 321);

  const ServiceConfig sc = thread_service_config(algo, 4);
  const RunMetrics solo =
      run_experiment_threads(sc.base, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(solo.failed_oom);

  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId q = svc.submit(seeds);
  svc.run_until_idle();

  EXPECT_EQ(svc.record(q).state, QueryState::kDone);
  expect_same_particles(solo.particles, svc.record(q).particles,
                        "thread-service-vs-solo");
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ThreadServiceEquivalence,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave));

TEST(ThreadService, MultiQueryUnderScheduleFuzz) {
  // Three queries multiplexed on fuzzed thread schedules: per-query
  // results still match solo runs bit for bit (advance_batch is
  // schedule-independent) and cache sharing does not disturb them.
  auto w = sf::testing::rotor_world(3);
  const std::vector<std::vector<Vec3>> sets = {
      seeds_for(w, 10, 91), seeds_for(w, 8, 92), seeds_for(w, 12, 93)};

  ServiceConfig sc = thread_service_config(Algorithm::kLoadOnDemand, 4);
  sc.base.schedule_fuzz_seed = 0xf22;
  sc.max_queries_per_epoch = 3;
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  std::vector<QueryId> ids;
  for (const auto& s : sets) ids.push_back(svc.submit(s));
  svc.run_until_idle();

  for (std::size_t i = 0; i < sets.size(); ++i) {
    const RunMetrics solo =
        run_experiment_threads(sc.base, w.decomp(), *w.source, sets[i]);
    EXPECT_EQ(svc.record(ids[i]).state, QueryState::kDone);
    expect_same_particles(solo.particles, svc.record(ids[i]).particles,
                          "fuzzed-per-query");
  }
}

TEST(ThreadService, EpochBoundaryCancellationDrains) {
  // The thread runtime's cancellation granularity: a query cancelled at
  // (or before) epoch start terminates every particle as kCancelled at
  // its first advance, draining through the normal termination path.
  auto w = sf::testing::abc_world(2);
  const auto seeds = seeds_for(w, 12, 77);

  ExperimentConfig cfg = test_config(Algorithm::kLoadOnDemand, 3);
  cfg.limits.max_steps = 500;
  cfg.seed_queries.assign(seeds.size(), 9);
  cfg.runtime.cancels = {{9, 0.0}};
  const RunMetrics m =
      run_experiment_threads(cfg, w.decomp(), *w.source, seeds);

  ASSERT_EQ(m.particles.size(), seeds.size());
  for (const Particle& p : m.particles) {
    EXPECT_EQ(p.query, 9u);
    EXPECT_TRUE(p.status == ParticleStatus::kCancelled ||
                p.status == ParticleStatus::kExitedDomain)
        << "particle " << p.id;
    if (p.status == ParticleStatus::kCancelled) {
      EXPECT_EQ(p.steps, 0u) << "cancelled before any work";
    }
  }
  ASSERT_EQ(m.query_completions.size(), 1u);
  EXPECT_EQ(m.query_completions[0].query, 9u);
}

TEST(ThreadService, SharedCacheWarmsAcrossEpochs) {
  auto w = sf::testing::abc_world(3);
  const auto seeds = seeds_for(w, 16, 44);

  ServiceConfig sc = thread_service_config(Algorithm::kLoadOnDemand, 4);
  sc.max_queries_per_epoch = 1;
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId a = svc.submit(seeds);
  const QueryId b = svc.submit(seeds);
  svc.run_until_idle();

  expect_same_particles(svc.record(a).particles, svc.record(b).particles,
                        "warm-vs-cold-epoch");
  EXPECT_GT(svc.report().blocks_adopted, 0u);
}

}  // namespace
}  // namespace sf
