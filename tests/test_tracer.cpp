#include "core/tracer.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"

namespace sf {
namespace {

DatasetPtr rotor_dataset(int blocks = 2, int nodes = 17, int ghost = 2) {
  auto field = std::make_shared<RotorField>();
  const BlockDecomposition decomp(field->bounds(), blocks, blocks, blocks);
  return std::make_shared<BlockedDataset>(field, decomp, nodes, ghost);
}

TEST(Tracer, CircularOrbitReturnsToStart) {
  auto ds = rotor_dataset(2, 33, 2);
  IntegratorParams iparams;
  iparams.tol = 1e-8;
  TraceLimits limits;
  limits.max_time = 6.283185307179586;  // one revolution
  limits.max_steps = 100000;

  const Vec3 seed{1, 0, 0};
  const auto particles = trace_all(*ds, std::span(&seed, 1), iparams, limits);
  ASSERT_EQ(particles.size(), 1u);
  EXPECT_EQ(particles[0].status, ParticleStatus::kMaxTime);
  // Grid-resolution-limited accuracy.
  EXPECT_LT(distance(particles[0].pos, seed), 0.01);
}

TEST(Tracer, UniformFlowExitsDomain) {
  auto field = std::make_shared<UniformField>(
      Vec3{1, 0, 0}, AABB{{0, 0, 0}, {1, 1, 1}});
  const BlockDecomposition decomp(field->bounds(), 2, 2, 2);
  auto ds = std::make_shared<BlockedDataset>(field, decomp, 9, 2);

  const Vec3 seed{0.05, 0.5, 0.5};
  TraceLimits limits;
  const auto ps = trace_all(*ds, std::span(&seed, 1), IntegratorParams{},
                            limits);
  EXPECT_EQ(ps[0].status, ParticleStatus::kExitedDomain);
  EXPECT_GT(ps[0].pos.x, 0.99);
  EXPECT_NEAR(ps[0].pos.y, 0.5, 1e-9);
}

TEST(Tracer, StagnantAtCriticalPoint) {
  auto field = std::make_shared<SaddleField>();
  const BlockDecomposition decomp(field->bounds(), 2, 2, 2);
  auto ds = std::make_shared<BlockedDataset>(field, decomp, 9, 2);
  const Vec3 seed{0, 0, 0};  // the saddle point: v = 0
  const auto ps = trace_all(*ds, std::span(&seed, 1), IntegratorParams{},
                            TraceLimits{});
  EXPECT_EQ(ps[0].status, ParticleStatus::kStagnant);
}

TEST(Tracer, MaxStepsEnforced) {
  auto ds = rotor_dataset();
  TraceLimits limits;
  limits.max_steps = 7;
  const Vec3 seed{1, 0, 0};
  const auto ps =
      trace_all(*ds, std::span(&seed, 1), IntegratorParams{}, limits);
  EXPECT_EQ(ps[0].status, ParticleStatus::kMaxSteps);
  EXPECT_EQ(ps[0].steps, 7u);
}

TEST(Tracer, SeedOutsideDomainTerminatesImmediately) {
  auto ds = rotor_dataset();
  const Vec3 seed{5, 5, 5};
  const auto ps = trace_all(*ds, std::span(&seed, 1), IntegratorParams{},
                            TraceLimits{});
  EXPECT_EQ(ps[0].status, ParticleStatus::kExitedDomain);
  EXPECT_EQ(ps[0].steps, 0u);
}

TEST(Tracer, RecorderCollectsSeedAndSteps) {
  auto ds = rotor_dataset();
  TraceLimits limits;
  limits.max_steps = 20;
  PolylineRecorder recorder(1);
  const Vec3 seed{1, 0, 0};
  const auto ps = trace_all(*ds, std::span(&seed, 1), IntegratorParams{},
                            limits, &recorder);
  ASSERT_EQ(recorder.lines().size(), 1u);
  EXPECT_EQ(recorder.lines()[0].size(), ps[0].steps + 1);
  EXPECT_EQ(recorder.lines()[0].front(), seed);
  // geometry_points mirrors the recorded polyline length.
  EXPECT_EQ(ps[0].geometry_points, ps[0].steps + 1);
}

TEST(Tracer, AdvanceStopsAtUnavailableBlockAndResumes) {
  auto ds = rotor_dataset(2, 17, 2);
  const BlockDecomposition& decomp = ds->decomposition();
  Tracer tracer(&decomp, IntegratorParams{},
                TraceLimits{.max_time = 6.3, .max_steps = 100000,
                            .min_speed = 1e-8});

  // Only the seed's block is available at first.
  Particle p;
  p.pos = {1, 0, 0};
  const BlockId home = decomp.block_of(p.pos);
  std::map<BlockId, GridPtr> loaded{{home, ds->block(home)}};
  auto access = [&](BlockId id) -> const StructuredGrid* {
    auto it = loaded.find(id);
    return it == loaded.end() ? nullptr : it->second.get();
  };

  AdvanceOutcome out = tracer.advance(p, access);
  EXPECT_EQ(out.status, ParticleStatus::kActive);
  ASSERT_NE(out.blocking_block, kInvalidBlock);
  EXPECT_NE(out.blocking_block, home);
  EXPECT_EQ(decomp.block_of(p.pos), out.blocking_block);

  // Feed it blocks until it finishes the revolution.
  int handoffs = 0;
  while (out.status == ParticleStatus::kActive && handoffs < 64) {
    loaded[out.blocking_block] = ds->block(out.blocking_block);
    out = tracer.advance(p, access);
    ++handoffs;
  }
  EXPECT_EQ(out.status, ParticleStatus::kMaxTime);
  EXPECT_GE(handoffs, 3);  // a circle through 4 quadrant blocks
}

TEST(Tracer, TrajectoryIndependentOfBlockAvailability) {
  // The core determinism property (DESIGN.md §5.1): advancing with all
  // blocks available gives bit-identical results to advancing with
  // blocks appearing one at a time.
  auto ds = rotor_dataset(4, 9, 2);
  const BlockDecomposition& decomp = ds->decomposition();
  TraceLimits limits{.max_time = 20.0, .max_steps = 5000,
                     .min_speed = 1e-8};
  Tracer tracer(&decomp, IntegratorParams{}, limits);

  // Run A: everything available.
  Particle a;
  a.pos = {0.9, 0.3, 0.1};
  std::vector<GridPtr> all;
  for (BlockId b = 0; b < decomp.num_blocks(); ++b) {
    all.push_back(ds->block(b));
  }
  tracer.advance(a, [&](BlockId id) { return all[id].get(); });

  // Run B: blocks trickle in one hand-off at a time.
  Particle b;
  b.pos = {0.9, 0.3, 0.1};
  std::map<BlockId, GridPtr> have;
  auto access = [&](BlockId id) -> const StructuredGrid* {
    auto it = have.find(id);
    return it == have.end() ? nullptr : it->second.get();
  };
  AdvanceOutcome out = tracer.advance(b, access);
  while (out.status == ParticleStatus::kActive) {
    // Adversarial cache: drop everything except the needed block.
    have.clear();
    have[out.blocking_block] = ds->block(out.blocking_block);
    out = tracer.advance(b, access);
  }

  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.pos.x, b.pos.x);
  EXPECT_EQ(a.pos.y, b.pos.y);
  EXPECT_EQ(a.pos.z, b.pos.z);
  EXPECT_EQ(a.time, b.time);
}

TEST(Tracer, TerminalParticleIsNotReAdvanced) {
  auto ds = rotor_dataset();
  Tracer tracer(&ds->decomposition(), IntegratorParams{}, TraceLimits{});
  Particle p;
  p.pos = {1, 0, 0};
  p.status = ParticleStatus::kMaxSteps;
  const auto out = tracer.advance(p, [](BlockId) -> const StructuredGrid* {
    ADD_FAILURE() << "must not sample blocks for a terminal particle";
    return nullptr;
  });
  EXPECT_EQ(out.status, ParticleStatus::kMaxSteps);
  EXPECT_EQ(out.steps, 0u);
}

TEST(TraceField, DirectFieldTracingMatchesAnalyticCircle) {
  const RotorField f;
  IntegratorParams prm;
  prm.tol = 1e-10;
  TraceLimits limits;
  limits.max_time = 3.141592653589793;  // half revolution
  limits.max_steps = 100000;
  const Particle p = trace_field(f, {1, 0, 0}, prm, limits);
  EXPECT_EQ(p.status, ParticleStatus::kMaxTime);
  EXPECT_LT(distance(p.pos, {-1, 0, 0}), 1e-6);
}

TEST(ParticleStatus, ToStringCoversAll) {
  EXPECT_STREQ(to_string(ParticleStatus::kActive), "active");
  EXPECT_STREQ(to_string(ParticleStatus::kExitedDomain), "exited-domain");
  EXPECT_STREQ(to_string(ParticleStatus::kMaxTime), "max-time");
  EXPECT_STREQ(to_string(ParticleStatus::kMaxSteps), "max-steps");
  EXPECT_STREQ(to_string(ParticleStatus::kStagnant), "stagnant");
  EXPECT_STREQ(to_string(ParticleStatus::kError), "error");
}

}  // namespace
}  // namespace sf
