#include "runtime/thread_runtime.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "algorithms/load_on_demand.hpp"
#include "algorithms/hybrid.hpp"
#include "algorithms/static_alloc.hpp"
#include "io/block_store.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

ThreadRuntimeConfig thread_config(int ranks) {
  ThreadRuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.model = sf::testing::test_model();
  cfg.cache_blocks = 16;
  return cfg;
}

IntegratorParams iparams() { return {}; }
TraceLimits limits() {
  return {.max_time = 15.0, .max_steps = 1500, .min_speed = 1e-8};
}

std::vector<Particle> run_threads(Algorithm algo, int ranks,
                                  const sf::testing::TestWorld& w,
                                  const std::vector<Vec3>& seeds,
                                  const BlockSource& source,
                                  std::uint64_t fuzz_seed = 0) {
  std::vector<Particle> rejected;
  std::vector<Particle> particles =
      make_particles(w.decomp(), seeds, rejected);
  const auto total = static_cast<std::uint32_t>(particles.size());

  ProgramFactory factory;
  switch (algo) {
    case Algorithm::kStaticAllocation:
      factory = make_static_allocation(
          &w.decomp(),
          partition_by_block_owner(w.decomp(), ranks, std::move(particles)),
          total);
      break;
    case Algorithm::kLoadOnDemand:
      factory = make_load_on_demand(
          &w.decomp(),
          partition_evenly_by_block(ranks, w.decomp(), std::move(particles)));
      break;
    case Algorithm::kHybridMasterSlave: {
      HybridParams hp;
      hp.slaves_per_master = 4;
      const HybridLayout layout = HybridLayout::make(ranks, 4);
      factory = make_hybrid(
          &w.decomp(),
          partition_for_masters(layout.num_masters, std::move(particles)),
          total, hp);
      break;
    }
  }

  ThreadRuntimeConfig cfg = thread_config(ranks);
  cfg.schedule_fuzz_seed = fuzz_seed;
  ThreadRuntime rt(cfg, &w.decomp(), &source, iparams(), limits());
  RunMetrics m = rt.run(factory);
  EXPECT_FALSE(m.failed_oom);
  m.particles.insert(m.particles.end(), rejected.begin(), rejected.end());
  std::sort(m.particles.begin(), m.particles.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  return m.particles;
}

TEST(ThreadRuntime, LoadOnDemandMatchesSerial) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(5);
  const auto seeds = random_seeds(w.dataset->bounds(), 20, rng);
  const auto threads =
      run_threads(Algorithm::kLoadOnDemand, 3, w, seeds, *w.source);
  const auto serial = trace_all(*w.dataset, seeds, iparams(), limits());
  ASSERT_EQ(threads.size(), serial.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    EXPECT_EQ(threads[i].status, serial[i].status);
    EXPECT_EQ(threads[i].steps, serial[i].steps);
    EXPECT_EQ(threads[i].pos.x, serial[i].pos.x);
  }
}

TEST(ThreadRuntime, StaticAllocationTerminatesAndMatches) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(7);
  const auto seeds = random_seeds(w.dataset->bounds(), 16, rng);
  const auto threads =
      run_threads(Algorithm::kStaticAllocation, 4, w, seeds, *w.source);
  const auto serial = trace_all(*w.dataset, seeds, iparams(), limits());
  ASSERT_EQ(threads.size(), serial.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    EXPECT_EQ(threads[i].steps, serial[i].steps) << i;
  }
}

TEST(ThreadRuntime, HybridTerminatesAndMatches) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(9);
  const auto seeds = random_seeds(w.dataset->bounds(), 16, rng);
  const auto threads =
      run_threads(Algorithm::kHybridMasterSlave, 4, w, seeds, *w.source);
  const auto serial = trace_all(*w.dataset, seeds, iparams(), limits());
  ASSERT_EQ(threads.size(), serial.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    EXPECT_EQ(threads[i].steps, serial[i].steps) << i;
    EXPECT_EQ(threads[i].pos.y, serial[i].pos.y) << i;
  }
}

TEST(ThreadRuntime, RealDiskIoEndToEnd) {
  // Full stack: dataset -> BlockStore on disk -> DiskBlockSource -> the
  // Load On Demand program on real threads reading real files.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("sf_threads_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  auto w = sf::testing::rotor_world(2);
  BlockStore::write(dir, *w.dataset);
  auto store = std::make_shared<BlockStore>(dir);
  const DiskBlockSource disk_source(store);

  Rng rng(11);
  const auto seeds = random_seeds(w.dataset->bounds(), 10, rng);
  const auto from_disk =
      run_threads(Algorithm::kLoadOnDemand, 2, w, seeds, disk_source);
  const auto serial = trace_all(*w.dataset, seeds, iparams(), limits());
  ASSERT_EQ(from_disk.size(), serial.size());
  for (std::size_t i = 0; i < from_disk.size(); ++i) {
    EXPECT_EQ(from_disk[i].steps, serial[i].steps);
  }
  fs::remove_all(dir);
}

// The schedule-perturbation harness injects randomized yields and short
// sleeps at every mailbox and cache boundary.  Whatever interleaving that
// produces, the results must still match the serial tracer exactly — any
// divergence means an order-dependence bug in the protocol.
TEST(ThreadRuntime, ScheduleFuzzMatchesSerialAcrossSeeds) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(13);
  const auto seeds = random_seeds(w.dataset->bounds(), 14, rng);
  const auto serial = trace_all(*w.dataset, seeds, iparams(), limits());
  const Algorithm algos[] = {Algorithm::kStaticAllocation,
                             Algorithm::kLoadOnDemand,
                             Algorithm::kHybridMasterSlave};
  for (const Algorithm algo : algos) {
    for (std::uint64_t fuzz : {1ULL, 71ULL, 4242ULL}) {
      const auto threads = run_threads(algo, 4, w, seeds, *w.source, fuzz);
      ASSERT_EQ(threads.size(), serial.size());
      for (std::size_t i = 0; i < threads.size(); ++i) {
        EXPECT_EQ(threads[i].status, serial[i].status)
            << "algo " << static_cast<int>(algo) << " fuzz " << fuzz
            << " particle " << i;
        EXPECT_EQ(threads[i].steps, serial[i].steps)
            << "algo " << static_cast<int>(algo) << " fuzz " << fuzz
            << " particle " << i;
        EXPECT_EQ(threads[i].pos.x, serial[i].pos.x)
            << "algo " << static_cast<int>(algo) << " fuzz " << fuzz
            << " particle " << i;
      }
    }
  }
}

TEST(ThreadRuntime, Validation) {
  auto w = sf::testing::rotor_world(2);
  ThreadRuntimeConfig bad = thread_config(0);
  EXPECT_THROW(ThreadRuntime(bad, &w.decomp(), w.source.get(), iparams(),
                             limits()),
               std::invalid_argument);
}

}  // namespace
}  // namespace sf
