#include "core/aabb.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(AABB, DefaultIsInvalid) {
  AABB box;
  EXPECT_FALSE(box.valid());
}

TEST(AABB, ContainsBoundaryAndInterior) {
  const AABB box{{0, 0, 0}, {1, 2, 3}};
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains({0.5, 1.0, 1.5}));
  EXPECT_TRUE(box.contains({0, 0, 0}));
  EXPECT_TRUE(box.contains({1, 2, 3}));
  EXPECT_FALSE(box.contains({1.0001, 1, 1}));
  EXPECT_FALSE(box.contains({-0.0001, 1, 1}));
}

TEST(AABB, ExtentCenterVolume) {
  const AABB box{{-1, -2, -3}, {1, 2, 3}};
  EXPECT_EQ(box.extent(), Vec3(2, 4, 6));
  EXPECT_EQ(box.center(), Vec3(0, 0, 0));
  EXPECT_DOUBLE_EQ(box.volume(), 48.0);
}

TEST(AABB, ExpandGrowsToCoverPoints) {
  AABB box;
  box.expand({1, 1, 1});
  EXPECT_TRUE(box.valid());
  EXPECT_DOUBLE_EQ(box.volume(), 0.0);
  box.expand({-1, 2, 0});
  EXPECT_EQ(box.lo, Vec3(-1, 1, 0));
  EXPECT_EQ(box.hi, Vec3(1, 2, 1));
}

TEST(AABB, Inflated) {
  const AABB box{{0, 0, 0}, {1, 1, 1}};
  const AABB big = box.inflated(0.5);
  EXPECT_EQ(big.lo, Vec3(-0.5, -0.5, -0.5));
  EXPECT_EQ(big.hi, Vec3(1.5, 1.5, 1.5));
}

TEST(AABB, Intersects) {
  const AABB a{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(a.intersects(AABB{{0.5, 0.5, 0.5}, {2, 2, 2}}));
  // Face contact counts as intersection.
  EXPECT_TRUE(a.intersects(AABB{{1, 0, 0}, {2, 1, 1}}));
  EXPECT_FALSE(a.intersects(AABB{{1.01, 0, 0}, {2, 1, 1}}));
}

TEST(AABB, ClampProjectsOntoBox) {
  const AABB box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_EQ(box.clamp({2, 0.5, -3}), Vec3(1, 0.5, 0));
  EXPECT_EQ(box.clamp({0.3, 0.4, 0.5}), Vec3(0.3, 0.4, 0.5));
}

}  // namespace
}  // namespace sf
