#include "analysis/time_field.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

TEST(SteadyAsTime, IgnoresTime) {
  const SteadyAsTimeField f(std::make_shared<UniformField>(Vec3{1, 2, 3}));
  Vec3 a, b;
  ASSERT_TRUE(f.sample({0, 0, 0}, -5.0, a));
  ASSERT_TRUE(f.sample({0, 0, 0}, 1e6, b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, Vec3(1, 2, 3));
}

TEST(DoubleGyre, DividesAtOscillatingLine) {
  const DoubleGyreField f;
  Vec3 v;
  // At t = 0 the divider is x = 1: pure vertical flow there.
  ASSERT_TRUE(f.sample({1.0, 0.3, 0.0}, 0.0, v));
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  // Velocity vanishes on the boundary walls.
  ASSERT_TRUE(f.sample({0.0, 0.5, 0.0}, 0.0, v));
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  ASSERT_TRUE(f.sample({0.5, 0.0, 0.0}, 0.0, v));
  EXPECT_NEAR(v.y, 0.0, 1e-12);
}

TEST(DoubleGyre, TimePeriodicity) {
  const DoubleGyreField f(0.1, 0.25, 0.62831853071795865);  // period 10
  Vec3 a, b;
  ASSERT_TRUE(f.sample({0.7, 0.4, 0.0}, 1.3, a));
  ASSERT_TRUE(f.sample({0.7, 0.4, 0.0}, 11.3, b));
  EXPECT_NEAR(a.x, b.x, 1e-12);
  EXPECT_NEAR(a.y, b.y, 1e-12);
}

TEST(DoubleGyre, IncompressiblePlanarFlow) {
  const DoubleGyreField f;
  const double h = 1e-6;
  for (const double t : {0.0, 1.7, 4.2}) {
    const Vec3 p{0.8, 0.6, 0.0};
    Vec3 xp, xm, yp, ym;
    ASSERT_TRUE(f.sample(p + Vec3{h, 0, 0}, t, xp));
    ASSERT_TRUE(f.sample(p - Vec3{h, 0, 0}, t, xm));
    ASSERT_TRUE(f.sample(p + Vec3{0, h, 0}, t, yp));
    ASSERT_TRUE(f.sample(p - Vec3{0, h, 0}, t, ym));
    const double div = (xp.x - xm.x + yp.y - ym.y) / (2 * h);
    EXPECT_NEAR(div, 0.0, 1e-6);
  }
}

TEST(TimeSlice, BoundsComeFromSlices) {
  const AABB box{{0, 0, 0}, {2, 2, 2}};
  auto f = std::make_shared<UniformField>(Vec3{1, 0, 0}, box);
  const BlockDecomposition d(box, 1, 1, 1);
  auto ds = std::make_shared<BlockedDataset>(f, d, 4, 1);
  const TimeSliceField field({ds, ds, ds}, {0.0, 1.0, 2.0});
  EXPECT_EQ(field.bounds(), box);
  EXPECT_EQ(field.num_slices(), 3u);
  EXPECT_EQ(field.time_range(), (std::pair{0.0, 2.0}));
}

TEST(TimeSlice, PicksCorrectBracket) {
  const AABB box{{0, 0, 0}, {1, 1, 1}};
  const BlockDecomposition d(box, 1, 1, 1);
  auto mk = [&](double vx) {
    return std::make_shared<BlockedDataset>(
        std::make_shared<UniformField>(Vec3{vx, 0, 0}, box), d, 4, 1);
  };
  const TimeSliceField field({mk(1), mk(2), mk(4)}, {0.0, 1.0, 2.0});
  Vec3 v;
  ASSERT_TRUE(field.sample({0.5, 0.5, 0.5}, 0.0, v));
  EXPECT_NEAR(v.x, 1.0, 1e-12);
  ASSERT_TRUE(field.sample({0.5, 0.5, 0.5}, 1.0, v));
  EXPECT_NEAR(v.x, 2.0, 1e-12);
  ASSERT_TRUE(field.sample({0.5, 0.5, 0.5}, 1.5, v));
  EXPECT_NEAR(v.x, 3.0, 1e-12);
  ASSERT_TRUE(field.sample({0.5, 0.5, 0.5}, 2.0, v));
  EXPECT_NEAR(v.x, 4.0, 1e-12);
}

}  // namespace
}  // namespace sf
