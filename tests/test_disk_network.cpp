#include <gtest/gtest.h>

#include "sim/disk.hpp"
#include "sim/network.hpp"

namespace sf {
namespace {

MachineModel simple_model() {
  MachineModel m;
  m.io_latency = 1.0;
  m.io_bandwidth = 100.0;  // 100 bytes/sec: easy numbers
  m.net_latency = 0.5;
  m.net_bandwidth = 10.0;
  m.msg_overhead = 0.25;
  m.pack_bandwidth = 100.0;
  return m;
}

TEST(SharedDisk, SingleChannelQueues) {
  SharedDisk disk(simple_model(), 1);
  // 100-byte read: 1s latency + 1s transfer = 2s service.
  EXPECT_DOUBLE_EQ(disk.submit_read(0.0, 100), 2.0);
  // Second read at t=0 queues behind the first.
  EXPECT_DOUBLE_EQ(disk.submit_read(0.0, 100), 4.0);
  // A late arrival after the channel is free starts immediately.
  EXPECT_DOUBLE_EQ(disk.submit_read(10.0, 100), 12.0);
}

TEST(SharedDisk, MultipleChannelsServeInParallel) {
  SharedDisk disk(simple_model(), 3);
  EXPECT_DOUBLE_EQ(disk.submit_read(0.0, 100), 2.0);
  EXPECT_DOUBLE_EQ(disk.submit_read(0.0, 100), 2.0);
  EXPECT_DOUBLE_EQ(disk.submit_read(0.0, 100), 2.0);
  // Fourth request waits for the earliest-free channel.
  EXPECT_DOUBLE_EQ(disk.submit_read(0.0, 100), 4.0);
}

TEST(SharedDisk, CountersAccumulate) {
  SharedDisk disk(simple_model(), 2);
  disk.submit_read(0.0, 10);
  disk.submit_read(0.0, 20);
  EXPECT_EQ(disk.reads(), 2u);
  EXPECT_EQ(disk.bytes_read(), 30u);
}

TEST(SharedDisk, RejectsOutOfOrderSubmissions) {
  SharedDisk disk(simple_model(), 1);
  disk.submit_read(5.0, 10);
  EXPECT_THROW(disk.submit_read(4.0, 10), std::logic_error);
}

TEST(SharedDisk, RejectsZeroChannels) {
  EXPECT_THROW(SharedDisk(simple_model(), 0), std::invalid_argument);
}

TEST(SharedDisk, ContentionScalesWithRedundantReaders) {
  // The Load-On-Demand failure mode: R ranks all reading the same block
  // serialize on the channels; completion of the last read grows
  // linearly once channels saturate.
  const MachineModel m = simple_model();
  SharedDisk disk(m, 4);
  SimTime last = 0.0;
  for (int r = 0; r < 32; ++r) last = disk.submit_read(0.0, 100);
  // 32 reads over 4 channels of 2s each: 8 rounds -> 16s.
  EXPECT_DOUBLE_EQ(last, 16.0);
}

TEST(Network, DeliveryTimeIsLatencyPlusTransfer) {
  Network net(simple_model());
  // 0.5 latency + 20 bytes / 10 Bps = 2.5.
  EXPECT_DOUBLE_EQ(net.delivery_time(1.0, 20), 3.5);
  EXPECT_EQ(net.messages(), 1u);
  EXPECT_EQ(net.bytes_sent(), 20u);
}

TEST(Network, EndpointCostHasOverheadAndPacking) {
  Network net(simple_model());
  // 0.25 overhead + 50/100 packing.
  EXPECT_DOUBLE_EQ(net.endpoint_cost(50), 0.75);
  EXPECT_DOUBLE_EQ(net.endpoint_cost(0), 0.25);
}

TEST(MachineModel, JaguarPresetIsSelfConsistent) {
  const MachineModel m = MachineModel::jaguar_like();
  EXPECT_GT(m.seconds_per_step, 0.0);
  EXPECT_GT(m.io_channels, 0);
  // A 12 MB block read must cost far more than a small message.
  EXPECT_GT(m.io_service_seconds(12u << 20),
            10.0 * m.message_flight_seconds(1024));
  // Latency floors apply to empty payloads.
  EXPECT_DOUBLE_EQ(m.io_service_seconds(0), m.io_latency);
  EXPECT_DOUBLE_EQ(m.message_flight_seconds(0), m.net_latency);
}

}  // namespace
}  // namespace sf
