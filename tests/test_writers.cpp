#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/analytic_fields.hpp"
#include "io/obj_writer.hpp"
#include "io/vtk_writer.hpp"

namespace sf {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream f(p);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

class WriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sf_io_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(WriterTest, PolylinesHeaderAndCounts) {
  const std::vector<std::vector<Vec3>> lines{
      {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}},
      {{0, 1, 0}, {0, 2, 0}},
      {{9, 9, 9}},  // too short: skipped
  };
  const fs::path p = dir_ / "lines.vtk";
  write_vtk_polylines(p, lines);
  const std::string text = slurp(p);
  EXPECT_NE(text.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(text.find("DATASET POLYDATA"), std::string::npos);
  EXPECT_NE(text.find("POINTS 5 float"), std::string::npos);
  EXPECT_NE(text.find("LINES 2 7"), std::string::npos);
  EXPECT_NE(text.find("POINT_DATA 5"), std::string::npos);
}

TEST_F(WriterTest, PolylinesAllDegenerate) {
  const fs::path p = dir_ / "empty.vtk";
  write_vtk_polylines(p, {{}, {{1, 1, 1}}});
  EXPECT_NE(slurp(p).find("POINTS 0 float"), std::string::npos);
}

TEST_F(WriterTest, VectorGridDimensionsAndData) {
  StructuredGrid grid(AABB{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3);
  grid.sample_from(UniformField({1, 2, 3}, AABB{{0, 0, 0}, {1, 1, 1}}));
  const fs::path p = dir_ / "grid.vtk";
  write_vtk_vector_grid(p, grid);
  const std::string text = slurp(p);
  EXPECT_NE(text.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(text.find("DIMENSIONS 3 3 3"), std::string::npos);
  EXPECT_NE(text.find("VECTORS velocity float"), std::string::npos);
  EXPECT_NE(text.find("1 2 3"), std::string::npos);
}

TEST_F(WriterTest, ScalarGridValidatesSize) {
  const AABB box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_THROW(
      write_vtk_scalar_grid(dir_ / "bad.vtk", box, 2, 2, 2, {1.0, 2.0}),
      std::invalid_argument);
  std::vector<double> values(8, 0.5);
  write_vtk_scalar_grid(dir_ / "ok.vtk", box, 2, 2, 2, values, "ftle");
  const std::string text = slurp(dir_ / "ok.vtk");
  EXPECT_NE(text.find("SCALARS ftle float 1"), std::string::npos);
  EXPECT_NE(text.find("POINT_DATA 8"), std::string::npos);
}

TEST_F(WriterTest, PointsWithScalars) {
  const std::vector<Vec3> pts{{1, 0, 0}, {0, 1, 0}};
  write_vtk_points(dir_ / "pts.vtk", pts, {0.5, 0.25});
  const std::string text = slurp(dir_ / "pts.vtk");
  EXPECT_NE(text.find("VERTICES 2 4"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
  EXPECT_THROW(write_vtk_points(dir_ / "bad.vtk", pts, {1.0}),
               std::invalid_argument);
}

TEST_F(WriterTest, ObjWritesVerticesAndOneBasedFaces) {
  const std::vector<Vec3> verts{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  const std::vector<Triangle> tris{{0, 1, 2}};
  write_obj(dir_ / "tri.obj", verts, tris);
  const std::string text = slurp(dir_ / "tri.obj");
  EXPECT_NE(text.find("v 0 0 0"), std::string::npos);
  EXPECT_NE(text.find("f 1 2 3"), std::string::npos);
}

TEST_F(WriterTest, ObjValidatesIndices) {
  EXPECT_THROW(write_obj(dir_ / "bad.obj", {{0, 0, 0}}, {{0, 1, 2}}),
               std::invalid_argument);
}

TEST_F(WriterTest, WritersCreateParentDirectories) {
  const fs::path nested = dir_ / "a" / "b" / "lines.vtk";
  write_vtk_polylines(nested, {{{0, 0, 0}, {1, 1, 1}}});
  EXPECT_TRUE(fs::exists(nested));
}

}  // namespace
}  // namespace sf
