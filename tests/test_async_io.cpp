// Async block I/O tests (DESIGN.md §10): the loader coalesces, retries
// and cancels deterministically; prefetching never changes trajectories
// (both runtimes, all three algorithms, including under disk faults,
// stalls, crashes and schedule fuzz); the pinned LRU protects the
// batch's focus block at tiny capacities; and the invariant checker
// rejects every illegal pin/prefetch transition.

#include "io/async_loader.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "algorithms/driver.hpp"
#include "algorithms/hybrid.hpp"
#include "algorithms/load_on_demand.hpp"
#include "algorithms/static_alloc.hpp"
#include "check/invariants.hpp"
#include "core/tracer.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/thread_runtime.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

void expect_same_particles(const std::vector<Particle>& a,
                           const std::vector<Particle>& b,
                           const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " i=" << i;
    EXPECT_EQ(a[i].status, b[i].status) << label << " i=" << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.x, b[i].pos.x) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.y, b[i].pos.y) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.z, b[i].pos.z) << label << " i=" << i;
    EXPECT_EQ(a[i].time, b[i].time) << label << " i=" << i;
  }
}

// Counts per-block load() calls (thread-safe: the loader workers call it
// concurrently).  Lets coalescing tests assert "one read, many waiters".
class CountingSource final : public BlockSource {
 public:
  explicit CountingSource(const BlockSource* inner) : inner_(inner) {}

  GridPtr load(BlockId id) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counts_[id];
    }
    return inner_->load(id);
  }
  std::size_t block_bytes(BlockId id) const override {
    return inner_->block_bytes(id);
  }
  int num_blocks() const override { return inner_->num_blocks(); }

  int count(BlockId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counts_.find(id);
    return it == counts_.end() ? 0 : it->second;
  }

 private:
  const BlockSource* inner_;
  mutable std::mutex mu_;
  mutable std::map<BlockId, int> counts_;
};

// ---------------------------------------------------------------------------
// AsyncBlockLoader unit tests
// ---------------------------------------------------------------------------

// A stall hook that blocks the first attempt on `held` until the test
// releases it: deterministic control over when the single worker is busy.
struct WorkerGate {
  BlockId held = 0;
  std::atomic<bool> entered{false};
  std::promise<void> release;
  std::shared_future<void> released{release.get_future().share()};

  AsyncBlockLoader::StallHook hook() {
    return [this](BlockId id, int attempt) {
      if (id == held && attempt == 0) {
        entered = true;
        released.wait();
      }
      return 0.0;
    };
  }
  void wait_entered() {
    while (!entered) std::this_thread::yield();
  }
};

TEST(AsyncBlockLoader, CoalescesConcurrentRequestsIntoOneRead) {
  auto w = sf::testing::rotor_world(2);
  CountingSource source(w.source.get());
  AsyncBlockLoader::Config cfg;
  cfg.workers = 1;
  AsyncBlockLoader loader(&source, cfg);

  WorkerGate gate;
  loader.set_stall_hook(gate.hook());

  auto f1 = loader.request(0, /*demand=*/false);
  gate.wait_entered();  // the read is in flight (kLoading)...
  auto f2 = loader.request(0, /*demand=*/false);  // ...both of these
  auto f3 = loader.request(0, /*demand=*/true);   // coalesce onto it
  gate.release.set_value();

  const GridPtr g1 = f1.get();
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(f2.get().get(), g1.get());
  EXPECT_EQ(f3.get().get(), g1.get());
  EXPECT_EQ(source.count(0), 1);
  EXPECT_EQ(loader.submitted(), 1u);
  EXPECT_EQ(loader.coalesced(), 2u);
  EXPECT_EQ(loader.completed(), 1u);
}

TEST(AsyncBlockLoader, DemandRequestsJumpThePrefetchQueue) {
  auto w = sf::testing::rotor_world(2);
  CountingSource source(w.source.get());
  AsyncBlockLoader::Config cfg;
  cfg.workers = 1;  // a single worker exposes the service order
  AsyncBlockLoader loader(&source, cfg);

  WorkerGate gate;
  loader.set_stall_hook(gate.hook());

  std::mutex order_mu;
  std::vector<BlockId> order;
  const auto record = [&](BlockId id, GridPtr, std::exception_ptr) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(id);
  };

  std::vector<std::shared_future<GridPtr>> futures;
  futures.push_back(loader.request(0, false, record));
  gate.wait_entered();  // worker held on 0: everything below stays queued
  futures.push_back(loader.request(1, false, record));
  futures.push_back(loader.request(2, false, record));
  futures.push_back(loader.request(3, true, record));  // demand: overtakes
  gate.release.set_value();
  for (auto& f : futures) ASSERT_NE(f.get(), nullptr);

  // Futures resolve just before their completion fires; wait for the
  // last callback rather than racing it.
  for (;;) {
    std::lock_guard<std::mutex> lock(order_mu);
    if (order.size() == futures.size()) break;
    std::this_thread::yield();
  }
  std::lock_guard<std::mutex> lock(order_mu);
  EXPECT_EQ(order, (std::vector<BlockId>{0, 3, 1, 2}));
}

TEST(AsyncBlockLoader, ExhaustedRetriesSurfaceTheError) {
  auto w = sf::testing::rotor_world(2);
  AsyncBlockLoader::Config cfg;
  cfg.workers = 1;
  cfg.max_retries = 2;
  cfg.retry_backoff = 1e-4;
  cfg.backoff_cap = 1e-3;
  AsyncBlockLoader loader(w.source.get(), cfg);
  loader.set_fault_hook([](BlockId, int) { return true; });  // always fail

  std::promise<std::exception_ptr> seen;
  auto f = loader.request(0, true,
                          [&](BlockId, GridPtr g, std::exception_ptr e) {
                            EXPECT_EQ(g, nullptr);
                            seen.set_value(e);
                          });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_NE(seen.get_future().get(), nullptr);
  EXPECT_EQ(loader.failed(), 1u);
  EXPECT_EQ(loader.retries(), 2u);  // max_retries backoffs were taken
  EXPECT_EQ(loader.completed(), 0u);
}

TEST(AsyncBlockLoader, TransientFaultRetriesToSuccess) {
  auto w = sf::testing::rotor_world(2);
  CountingSource source(w.source.get());
  AsyncBlockLoader::Config cfg;
  cfg.workers = 1;
  cfg.max_retries = 3;
  cfg.retry_backoff = 1e-4;
  cfg.backoff_cap = 1e-3;
  AsyncBlockLoader loader(&source, cfg);
  // Attempts 0 and 1 fail, attempt 2 goes through.
  loader.set_fault_hook([](BlockId, int attempt) { return attempt < 2; });

  ASSERT_NE(loader.request(0, true).get(), nullptr);
  EXPECT_EQ(loader.retries(), 2u);
  EXPECT_EQ(loader.failed(), 0u);
  EXPECT_EQ(loader.completed(), 1u);
  EXPECT_EQ(source.count(0), 1);  // faulted attempts never reached the disk
}

TEST(AsyncBlockLoader, StallBeyondBackoffCapConsumesNoRetries) {
  auto w = sf::testing::rotor_world(2);
  AsyncBlockLoader::Config cfg;
  cfg.workers = 1;
  cfg.max_retries = 1;
  cfg.retry_backoff = 1e-4;
  cfg.backoff_cap = 1e-3;  // the stall below is 50x the cap
  AsyncBlockLoader loader(w.source.get(), cfg);
  loader.set_stall_hook([](BlockId, int) { return 0.05; });

  ASSERT_NE(loader.request(0, true).get(), nullptr);
  EXPECT_EQ(loader.retries(), 0u);  // slowness is not failure
  EXPECT_EQ(loader.failed(), 0u);
  EXPECT_EQ(loader.completed(), 1u);
}

TEST(AsyncBlockLoader, CancelQueuedResolvesNullButLoadingIsUncancellable) {
  auto w = sf::testing::rotor_world(2);
  CountingSource source(w.source.get());
  AsyncBlockLoader::Config cfg;
  cfg.workers = 1;
  AsyncBlockLoader loader(&source, cfg);

  WorkerGate gate;
  loader.set_stall_hook(gate.hook());

  auto f0 = loader.request(0, false);
  gate.wait_entered();
  auto f1 = loader.request(1, false);

  EXPECT_FALSE(loader.cancel(0));   // already loading
  EXPECT_TRUE(loader.cancel(1));    // still queued
  EXPECT_FALSE(loader.cancel(1));   // second cancel is a no-op
  EXPECT_FALSE(loader.cancel(99));  // never requested
  gate.release.set_value();

  ASSERT_NE(f0.get(), nullptr);
  EXPECT_EQ(f1.get(), nullptr);  // cancellation contract: null, no throw
  EXPECT_EQ(source.count(1), 0);
  EXPECT_EQ(loader.cancelled(), 1u);
}

// Regression for the take_settled()/settle() split (async_loader.hpp's
// locking contract, DESIGN.md §13): completions fire with mu_ released,
// so a callback may re-enter the loader.  Before the lock-scope
// refactor a completion that called request() or cancel() would
// self-deadlock on the non-recursive mutex — this test would hang (and
// in Debug the lock-rank registry would abort on the same-rank
// reacquisition).
TEST(AsyncBlockLoader, CompletionMayReenterRequestAndCancel) {
  auto w = sf::testing::rotor_world(2);
  CountingSource source(w.source.get());
  AsyncBlockLoader::Config cfg;
  cfg.workers = 1;
  AsyncBlockLoader loader(&source, cfg);

  WorkerGate gate;
  loader.set_stall_hook(gate.hook());

  // Block 0's completion — on the worker thread — cancels the still
  // queued block 2 and chains a request for block 1.
  std::promise<std::shared_future<GridPtr>> chained;
  std::atomic<bool> cancel_ok{false};
  auto f0 = loader.request(0, true,
                           [&](BlockId, GridPtr g, std::exception_ptr) {
                             EXPECT_NE(g, nullptr);
                             cancel_ok = loader.cancel(2);
                             chained.set_value(loader.request(1, true));
                           });
  gate.wait_entered();                 // 0 holds the only worker...
  auto f2 = loader.request(2, false);  // ...so 2 waits in the queue
  gate.release.set_value();

  ASSERT_NE(f0.get(), nullptr);
  auto f1 = chained.get_future().get();
  ASSERT_NE(f1.get(), nullptr);  // the re-entrant request was serviced
  EXPECT_TRUE(cancel_ok);        // the re-entrant cancel caught 2 queued
  EXPECT_EQ(f2.get(), nullptr);
  EXPECT_EQ(source.count(1), 1);
  EXPECT_EQ(source.count(2), 0);
  EXPECT_EQ(loader.completed(), 2u);
  EXPECT_EQ(loader.cancelled(), 1u);
}

// ---------------------------------------------------------------------------
// Simulated runtime: async must be invisible in the results
// ---------------------------------------------------------------------------

struct SimWorld {
  sf::testing::TestWorld w = sf::testing::rotor_world(4);  // 64 blocks
  std::vector<Vec3> seeds;

  SimWorld() {
    Rng rng(77);
    seeds = random_seeds(w.dataset->bounds(), 48, rng);
  }

  ExperimentConfig config(Algorithm algo, bool async) const {
    auto cfg = test_config(algo, 4);
    cfg.runtime.cache_blocks = 6;  // constrained LRU: heavy purge traffic
    cfg.limits.max_steps = 800;
    cfg.limits.max_time = 12.0;
    cfg.runtime.async_io.enabled = async;
    return cfg;
  }

  RunMetrics run(const ExperimentConfig& cfg) const {
    return run_experiment(cfg, w.decomp(), *w.source, seeds);
  }
};

std::string algo_test_name(const ::testing::TestParamInfo<Algorithm>& p) {
  switch (p.param) {
    case Algorithm::kStaticAllocation: return "Static";
    case Algorithm::kLoadOnDemand: return "LoD";
    case Algorithm::kHybridMasterSlave: return "Hybrid";
  }
  return "Unknown";
}

class AsyncSimEquivalence : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AsyncSimEquivalence, TrajectoriesMatchSyncOracle) {
  const Algorithm algo = GetParam();
  const SimWorld sw;

  const RunMetrics sync = sw.run(sw.config(algo, /*async=*/false));
  const RunMetrics async = sw.run(sw.config(algo, /*async=*/true));
  ASSERT_FALSE(sync.failed_oom);
  ASSERT_FALSE(async.failed_oom);

  // Zero tolerance: positions, steps, status and times are bit-equal.
  expect_same_particles(sync.particles, async.particles, "async-vs-sync");

  // The sync oracle must not have prefetched; the async run must have —
  // except static allocation, whose one-shot bulk demand loads can leave
  // no prefetch window at this scale (the bench covers the large case).
  EXPECT_EQ(sync.total_prefetches_issued(), 0u);
  if (algo != Algorithm::kStaticAllocation) {
    EXPECT_GT(async.total_prefetches_issued(), 0u);
  }
  // Every issued prefetch left the state machine (claimed or wasted).
  EXPECT_EQ(async.total_prefetch_hits() + async.total_prefetches_wasted(),
            async.total_prefetches_issued());
}

TEST_P(AsyncSimEquivalence, DisabledAsyncConfigIsInert) {
  const Algorithm algo = GetParam();
  const SimWorld sw;
  const RunMetrics base = sw.run(sw.config(algo, false));

  auto cfg = sw.config(algo, false);
  cfg.runtime.async_io.workers = 7;  // knobs without the master switch
  cfg.runtime.async_io.prefetch_depth = 9;
  cfg.runtime.async_io.staging_blocks = 1;
  const RunMetrics m = sw.run(cfg);

  EXPECT_EQ(m.wall_clock, base.wall_clock);
  EXPECT_EQ(m.total_blocks_loaded(), base.total_blocks_loaded());
  EXPECT_EQ(m.total_prefetches_issued(), 0u);
  expect_same_particles(base.particles, m.particles, "inert-config");
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AsyncSimEquivalence,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave),
                         algo_test_name);

// Load On Demand's demand sequence is timing-independent (each rank's
// next block depends only on its pool), so async must also preserve the
// load/purge ledger exactly — a prefetch hit counts as the same one
// load the demand would have issued.
TEST(AsyncSimIo, PrefetchHitsCountAsLoadsExactlyOnce) {
  const SimWorld sw;
  const RunMetrics sync = sw.run(sw.config(Algorithm::kLoadOnDemand, false));
  const RunMetrics async = sw.run(sw.config(Algorithm::kLoadOnDemand, true));

  EXPECT_EQ(async.total_blocks_loaded(), sync.total_blocks_loaded());
  EXPECT_EQ(async.total_blocks_purged(), sync.total_blocks_purged());
  EXPECT_EQ(async.block_efficiency(), sync.block_efficiency());
  EXPECT_GT(async.total_prefetch_hits(), 0u);
  // Overlap can only remove stall, never add it.
  EXPECT_LE(async.total_stall_time(), sync.total_stall_time());
}

TEST(AsyncSimIo, RepeatAsyncRunsAreDeterministic) {
  const SimWorld sw;
  const auto cfg = sw.config(Algorithm::kLoadOnDemand, true);
  const RunMetrics a = sw.run(cfg);
  const RunMetrics b = sw.run(cfg);
  EXPECT_EQ(a.wall_clock, b.wall_clock);
  EXPECT_EQ(a.total_prefetches_issued(), b.total_prefetches_issued());
  EXPECT_EQ(a.total_prefetch_hits(), b.total_prefetch_hits());
  expect_same_particles(a.particles, b.particles, "async-repeat");
}

// ---------------------------------------------------------------------------
// Prefetch x fault matrix (simulated runtime)
// ---------------------------------------------------------------------------

TEST(AsyncFaultMatrix, DiskFaultsDuringPrefetchRetryToTheSameResult) {
  const SimWorld sw;
  const RunMetrics oracle =
      sw.run(sw.config(Algorithm::kLoadOnDemand, false));

  auto cfg = sw.config(Algorithm::kLoadOnDemand, true);
  cfg.runtime.fault.disk_fault_rate = 0.3;  // default retry ladder: 8 deep
  const RunMetrics m = sw.run(cfg);

  ASSERT_FALSE(m.failed_oom);
  ASSERT_FALSE(m.failed_fault);
  EXPECT_GT(m.fault.disk_faults, 0u);
  EXPECT_GT(m.total_prefetches_issued(), 0u);
  expect_same_particles(oracle.particles, m.particles, "faulted-prefetch");
}

TEST(AsyncFaultMatrix, StallsExceedingTheBackoffCapOnlySlowTheRun) {
  const SimWorld sw;
  const RunMetrics oracle =
      sw.run(sw.config(Algorithm::kLoadOnDemand, false));

  auto cfg = sw.config(Algorithm::kLoadOnDemand, true);
  cfg.runtime.fault.disk_stall_rate = 0.5;
  cfg.runtime.fault.disk_stall_seconds = 2.0;  // 4x the 0.5 s backoff cap
  const RunMetrics m = sw.run(cfg);

  ASSERT_FALSE(m.failed_fault);
  EXPECT_GT(m.fault.disk_stalls, 0u);
  EXPECT_EQ(m.fault.disk_faults, 0u);  // a stall never consumes a retry
  expect_same_particles(oracle.particles, m.particles, "stalled-prefetch");
}

TEST(AsyncFaultMatrix, CrashWithOutstandingPrefetchesRecoversCleanly) {
  const SimWorld sw;
  const RunMetrics oracle =
      sw.run(sw.config(Algorithm::kLoadOnDemand, false));
  ASSERT_GT(oracle.wall_clock, 0.0);

  auto cfg = sw.config(Algorithm::kLoadOnDemand, true);
  // Kill a worker mid-run, while its prefetch pipeline is primed; take
  // checkpoints so the recovery path exercises the resident-block
  // snapshot too.  Rank 0 is the immune termination counter.
  cfg.runtime.fault.crashes = {{0.4 * oracle.wall_clock, 2}};
  cfg.runtime.fault.checkpoint_interval = 0.2 * oracle.wall_clock;
  const RunMetrics m = sw.run(cfg);

  ASSERT_FALSE(m.failed_fault);
  EXPECT_EQ(m.fault.crashes_injected, 1u);
  EXPECT_EQ(m.fault.crashes_survived, 1u);
  EXPECT_TRUE(m.ranks[2].crashed);
  expect_same_particles(oracle.particles, m.particles, "crash-recovery");

  // The checkpointed cache snapshots must never include a half-loaded
  // block: staged prefetches live outside the cache until claimed, so
  // every resident list fits the LRU capacity.
  ASSERT_NE(m.last_checkpoint, nullptr);
  for (const CheckpointRankState& rs : m.last_checkpoint->ranks) {
    EXPECT_LE(rs.resident.size(), cfg.runtime.cache_blocks)
        << "rank " << rs.rank;
  }
}

// ---------------------------------------------------------------------------
// Thread runtime: real overlapped reads, same results
// ---------------------------------------------------------------------------

IntegratorParams iparams() { return {}; }
TraceLimits thread_limits() {
  return {.max_time = 15.0, .max_steps = 1500, .min_speed = 1e-8};
}

std::vector<Particle> run_threads_async(Algorithm algo, int ranks,
                                        const sf::testing::TestWorld& w,
                                        const std::vector<Vec3>& seeds,
                                        std::uint64_t fuzz_seed = 0) {
  std::vector<Particle> rejected;
  std::vector<Particle> particles =
      make_particles(w.decomp(), seeds, rejected);
  const auto total = static_cast<std::uint32_t>(particles.size());

  ProgramFactory factory;
  switch (algo) {
    case Algorithm::kStaticAllocation:
      factory = make_static_allocation(
          &w.decomp(),
          partition_by_block_owner(w.decomp(), ranks, std::move(particles)),
          total);
      break;
    case Algorithm::kLoadOnDemand:
      factory = make_load_on_demand(
          &w.decomp(),
          partition_evenly_by_block(ranks, w.decomp(),
                                    std::move(particles)));
      break;
    case Algorithm::kHybridMasterSlave: {
      HybridParams hp;
      hp.slaves_per_master = 4;
      const HybridLayout layout = HybridLayout::make(ranks, 4);
      factory = make_hybrid(
          &w.decomp(),
          partition_for_masters(layout.num_masters, std::move(particles)),
          total, hp);
      break;
    }
  }

  ThreadRuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.model = sf::testing::test_model();
  cfg.cache_blocks = 6;  // constrained: prefetches matter
  cfg.schedule_fuzz_seed = fuzz_seed;
  cfg.async_io.enabled = true;
  cfg.async_io.workers = 2;
  ThreadRuntime rt(cfg, &w.decomp(), w.source.get(), iparams(),
                   thread_limits());
  RunMetrics m = rt.run(factory);
  EXPECT_FALSE(m.failed_oom);
  EXPECT_EQ(m.total_prefetch_hits() + m.total_prefetches_wasted(),
            m.total_prefetches_issued());
  m.particles.insert(m.particles.end(), rejected.begin(), rejected.end());
  std::sort(m.particles.begin(), m.particles.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  return m.particles;
}

class AsyncThreadEquivalence : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AsyncThreadEquivalence, MatchesSerialOracle) {
  const Algorithm algo = GetParam();
  auto w = sf::testing::rotor_world(2);
  Rng rng(5);
  const auto seeds = random_seeds(w.dataset->bounds(), 20, rng);
  const auto serial = trace_all(*w.dataset, seeds, iparams(),
                                thread_limits());

  expect_same_particles(serial, run_threads_async(algo, 4, w, seeds),
                        "threads-async");
  // Schedule fuzz perturbs thread interleavings; results must not move.
  expect_same_particles(serial,
                        run_threads_async(algo, 4, w, seeds, 0xfeedbeef),
                        "threads-async-fuzzed");
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AsyncThreadEquivalence,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave),
                         algo_test_name);

// ---------------------------------------------------------------------------
// Focus pinning at tiny cache capacities (the PR's eviction regression)
// ---------------------------------------------------------------------------

// At capacity 1 every access-miss insert evicts — historically including
// the batch's own focus block, leaving advance_batch's shared cursor on
// a purged grid.  With pin hooks the focus survives every probe insert
// and the capacity-1 run reproduces the all-resident trace exactly.
TEST(TracerFocusPin, CapacityOneCacheMatchesAllResidentTrace) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(11);
  const auto seeds = random_seeds(w.dataset->bounds(), 16, rng);
  const TraceLimits limits = thread_limits();
  const auto reference = trace_all(*w.dataset, seeds, iparams(), limits);

  BlockCache cache(1);
  std::vector<GridPtr> keepalive;  // probe grids may be evicted instantly
  BlockId focus = kInvalidBlock;
  const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
    if (const StructuredGrid* g = cache.find(id)) return g;
    GridPtr grid = w.dataset->block(id);
    keepalive.push_back(grid);
    cache.insert(id, grid);
    if (focus != kInvalidBlock) {
      // The regression: an unpinned focus would be the eviction victim.
      EXPECT_TRUE(cache.contains(focus)) << "focus " << focus
                                         << " evicted by probe " << id;
    }
    return grid.get();
  };
  const BlockPinHooks pins{
      .pin = [&](BlockId id) { cache.pin(id); focus = id; },
      .unpin =
          [&](BlockId id) {
            cache.unpin(id);
            if (focus == id) focus = kInvalidBlock;
          },
  };

  std::vector<Particle> rejected;
  std::vector<Particle> particles =
      make_particles(w.decomp(), seeds, rejected);
  ASSERT_TRUE(rejected.empty());
  std::sort(particles.begin(), particles.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });

  const Tracer tracer(&w.decomp(), iparams(), limits);
  tracer.advance_batch(particles, access, nullptr, &pins);

  EXPECT_GT(cache.purges(), 0u);           // the cache really thrashed
  EXPECT_LE(cache.size(), 2u);             // capacity + pinned overflow
  EXPECT_EQ(focus, kInvalidBlock);         // every pin was released
  expect_same_particles(reference, particles, "capacity-one");
}

// ---------------------------------------------------------------------------
// Invariant checker: pin and prefetch state machines
// ---------------------------------------------------------------------------

// Run `fn`, require an InvariantViolation, and hand back its diagnostic.
template <typename Fn>
InvariantDiagnostic expect_violation(Fn&& fn) {
  try {
    fn();
  } catch (const InvariantViolation& v) {
    return v.diag();
  }
  ADD_FAILURE() << "expected an InvariantViolation";
  return {};
}

CheckerConfig cache_config(std::size_t cache_blocks) {
  CheckerConfig cfg;
  cfg.num_ranks = 2;
  cfg.cache_blocks = cache_blocks;
  return cfg;
}

TEST(InvariantCheckerAsync, PinnedPurgeDetected) {
  InvariantChecker ck(cache_config(2));
  ck.on_block_insert(0, 1, {1}, 0.0);
  ck.on_block_insert(0, 2, {2, 1}, 0.1);
  ck.on_block_pin(0, 1);
  // A buggy cache that evicts the pinned LRU block 1 instead of 2.
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_block_insert(0, 3, {3, 2}, 0.2); });
  EXPECT_EQ(diag.kind, ViolationKind::kPinnedPurge);
  EXPECT_EQ(diag.rank, 0);
  EXPECT_EQ(diag.block, 1);
}

TEST(InvariantCheckerAsync, PinSkippingEvictionAccepted) {
  InvariantChecker ck(cache_config(2));
  ck.on_block_insert(0, 1, {1}, 0.0);
  ck.on_block_insert(0, 2, {2, 1}, 0.1);
  ck.on_block_pin(0, 1);
  ck.on_block_insert(0, 3, {3, 1}, 0.2);       // correct victim: 2
  ck.on_block_unpin(0, 1, {3, 1}, 0.3);        // no deferred work
  ck.on_block_insert(0, 4, {4, 3}, 0.4);       // 1 evictable again
}

TEST(InvariantCheckerAsync, AllPinnedOverflowAndDeferredEvictionAccepted) {
  InvariantChecker ck(cache_config(1));
  ck.on_block_insert(0, 1, {1}, 0.0);
  ck.on_block_pin(0, 1);
  ck.on_block_pin(0, 2);  // pin the in-flight target before its insert
  ck.on_block_insert(0, 2, {2, 1}, 0.1);  // legal: everything is pinned
  ck.on_block_unpin(0, 1, {2}, 0.2);      // deferred eviction reclaims 1
}

TEST(InvariantCheckerAsync, UnpinWithoutPinDetected) {
  InvariantChecker ck(cache_config(2));
  ck.on_block_insert(0, 1, {1}, 0.0);
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_block_unpin(0, 1, {1}, 0.1); });
  EXPECT_EQ(diag.kind, ViolationKind::kCacheMismatch);
  EXPECT_EQ(diag.block, 1);
}

TEST(InvariantCheckerAsync, LingeringOverflowAfterUnpinDetected) {
  InvariantChecker ck(cache_config(1));
  ck.on_block_insert(0, 1, {1}, 0.0);
  ck.on_block_pin(0, 1);
  ck.on_block_pin(0, 2);
  ck.on_block_insert(0, 2, {2, 1}, 0.1);
  // The unpin must run the deferred eviction; keeping both blocks is an
  // overflow with an evictable victim available.
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_block_unpin(0, 1, {2, 1}, 0.2); });
  EXPECT_EQ(diag.kind, ViolationKind::kCacheOverflow);
}

TEST(InvariantCheckerAsync, PrefetchDoubleIssueDetected) {
  InvariantChecker ck(cache_config(4));
  ck.on_prefetch_issued(0, 5, 0.0);
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_prefetch_issued(0, 5, 0.1); });
  EXPECT_EQ(diag.kind, ViolationKind::kPrefetchState);
  EXPECT_EQ(diag.block, 5);
}

TEST(InvariantCheckerAsync, PrefetchForResidentBlockDetected) {
  InvariantChecker ck(cache_config(4));
  ck.on_block_insert(0, 5, {5}, 0.0);
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_prefetch_issued(0, 5, 0.1); });
  EXPECT_EQ(diag.kind, ViolationKind::kPrefetchState);
}

TEST(InvariantCheckerAsync, StageWithoutIssueDetected) {
  InvariantChecker ck(cache_config(4));
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_prefetch_staged(0, 5, 0.0); });
  EXPECT_EQ(diag.kind, ViolationKind::kPrefetchState);
}

TEST(InvariantCheckerAsync, ClaimWithoutIssueDetected) {
  InvariantChecker ck(cache_config(4));
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_prefetch_claimed(0, 5, 0.0); });
  EXPECT_EQ(diag.kind, ViolationKind::kPrefetchState);
}

TEST(InvariantCheckerAsync, UnresolvedPrefetchAtRunEndDetected) {
  InvariantChecker ck(cache_config(4));
  ck.on_prefetch_issued(1, 8, 0.0);
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_run_end(/*completed=*/true, 1.0); });
  EXPECT_EQ(diag.kind, ViolationKind::kUnresolvedPrefetch);
  EXPECT_EQ(diag.rank, 1);
  EXPECT_EQ(diag.block, 8);
}

TEST(InvariantCheckerAsync, FullPrefetchLifecyclesAccepted) {
  InvariantChecker ck(cache_config(4));
  ck.on_prefetch_issued(0, 1, 0.0);   // issued -> staged -> claimed
  ck.on_prefetch_staged(0, 1, 0.1);
  ck.on_prefetch_claimed(0, 1, 0.2);
  ck.on_block_insert(0, 1, {1}, 0.2);
  ck.on_prefetch_issued(0, 2, 0.3);   // issued -> claimed (piggyback)
  ck.on_prefetch_claimed(0, 2, 0.4);
  ck.on_block_insert(0, 2, {2, 1}, 0.4);
  ck.on_prefetch_issued(0, 3, 0.5);   // issued -> cancelled (abandoned)
  ck.on_prefetch_cancelled(0, 3, 0.6);
  ck.on_prefetch_issued(0, 4, 0.7);   // staged -> cancelled (discarded)
  ck.on_prefetch_staged(0, 4, 0.8);
  ck.on_prefetch_cancelled(0, 4, 0.9);
  ck.on_run_end(/*completed=*/true, 1.0);
}

TEST(InvariantCheckerAsync, CrashClearsTheDeadRanksAsyncState) {
  CheckerConfig cfg = cache_config(4);
  cfg.fault_mode = true;
  InvariantChecker ck(cfg);
  ck.on_block_insert(1, 2, {2}, 0.0);
  ck.on_block_pin(1, 2);
  ck.on_prefetch_issued(1, 3, 0.1);
  ck.on_crash(1, 0.2);  // takes pins and prefetches down with the rank
  ck.on_run_end(/*completed=*/true, 1.0);  // no unresolved-prefetch fail
}

}  // namespace
}  // namespace sf
