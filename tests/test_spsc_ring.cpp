// Lock-free mailbox data plane (runtime/spsc_ring.hpp): ring
// wrap-around, full-ring backpressure into the overflow queue, FIFO
// preservation across overflow transitions, parked-consumer wakeups,
// and concurrent drain-while-fill stress.  This file lives in the
// `thread` suite so the TSan CI job runs every test here under
// ThreadSanitizer — the concurrency tests are the race-cleanliness
// proof for the acquire/release ring protocol.

#include "runtime/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "algorithms/load_on_demand.hpp"
#include "algorithms/routing.hpp"
#include "core/tracer.hpp"
#include "runtime/thread_runtime.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, WrapAroundPreservesFifo) {
  // Monotonic indices map to slots by masking: push/pop far past the
  // capacity so head/tail wrap the slot array many times.
  SpscRing<int> ring(8);
  int next_out = 0;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
    if (i % 3 == 2) {  // drain in bursts so occupancy varies
      for (int d = 0; d < 3; ++d) {
        int v = -1;
        ASSERT_TRUE(ring.try_pop(v));
        EXPECT_EQ(v, next_out++);
      }
    }
  }
  int v = -1;
  while (ring.try_pop(v)) EXPECT_EQ(v, next_out++);
  EXPECT_EQ(next_out, 10000);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsWithoutConsuming) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));
  int v = -1;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.try_push(4));  // freed slot is usable again
  for (int want = 1; want <= 4; ++want) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, want);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscChannel, OverflowNeverBlocksNeverDropsKeepsFifo) {
  // Push far past the ring capacity: the channel must accept everything
  // (never block, never drop) and pop must return the exact sequence.
  SpscChannel<int> ch(4);
  for (int i = 0; i < 1000; ++i) ch.push(int{i});
  EXPECT_FALSE(ch.empty());
  int v = -1;
  for (int want = 0; want < 1000; ++want) {
    ASSERT_TRUE(ch.pop(v));
    EXPECT_EQ(v, want);
  }
  EXPECT_FALSE(ch.pop(v));
  EXPECT_TRUE(ch.empty());
}

TEST(SpscChannel, FifoSurvivesRepeatedOverflowTransitions) {
  // Interleave bursts (forcing overflow mode) with partial drains
  // (clearing it): order must hold across every mode transition.
  SpscChannel<int> ch(2);
  int pushed = 0, popped = 0;
  for (int round = 0; round < 200; ++round) {
    for (int b = 0; b < 7; ++b) ch.push(int{pushed++});  // spills
    int v = -1;
    for (int d = 0; d < 5; ++d) {
      ASSERT_TRUE(ch.pop(v));
      EXPECT_EQ(v, popped++);
    }
  }
  int v = -1;
  while (ch.pop(v)) EXPECT_EQ(v, popped++);
  EXPECT_EQ(popped, pushed);
  EXPECT_TRUE(ch.empty());
}

// One producer fills (through overflow churn), one consumer drains with
// eventcount parking — the steady-state shape of a ThreadRuntime rank
// pair.  Exactly-once in-order delivery must hold under TSan.
TEST(SpscChannelThread, ConcurrentDrainWhileFillStress) {
  constexpr int kMessages = 200000;
  SpscChannel<int> ch(8);  // small ring: overflow engages under bursts
  ParkingLot parking;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      ch.push(int{i});
      parking.unpark();
    }
  });
  int want = 0;
  while (want < kMessages) {
    int v = -1;
    if (ch.pop(v)) {
      ASSERT_EQ(v, want);
      ++want;
      continue;
    }
    parking.park([&] { return !ch.empty(); },
                 std::chrono::milliseconds(20));
  }
  producer.join();
  int v = -1;
  EXPECT_FALSE(ch.pop(v));
}

// The runtime's full lane matrix in miniature: several producers, one
// consumer, one channel per (producer, consumer) pair, round-robin
// drain.  Per-lane FIFO and exactly-once delivery across lanes.
TEST(SpscChannelThread, MultiLaneRoundRobinExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50000;
  std::vector<std::unique_ptr<SpscChannel<std::uint64_t>>> lanes;
  for (int p = 0; p < kProducers; ++p) {
    lanes.push_back(std::make_unique<SpscChannel<std::uint64_t>>(4));
  }
  ParkingLot parking;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Tag: producer in the high bits, sequence in the low.
        lanes[p]->push((std::uint64_t{static_cast<std::uint32_t>(p)} << 32) |
                       static_cast<std::uint32_t>(i));
        parking.unpark();
      }
    });
  }
  std::vector<std::uint32_t> next_seq(kProducers, 0);
  int total = 0;
  std::size_t lane = 0;
  while (total < kProducers * kPerProducer) {
    bool got = false;
    for (int scan = 0; scan < kProducers; ++scan) {
      std::uint64_t v = 0;
      if (lanes[lane]->pop(v)) {
        const auto p = static_cast<int>(v >> 32);
        const auto seq = static_cast<std::uint32_t>(v);
        ASSERT_EQ(p, static_cast<int>(lane));
        ASSERT_EQ(seq, next_seq[p]++);  // per-lane FIFO
        ++total;
        got = true;
      }
      lane = (lane + 1) % kProducers;
      if (got) break;
    }
    if (!got) {
      parking.park(
          [&] {
            for (const auto& l : lanes) {
              if (!l->empty()) return true;
            }
            return false;
          },
          std::chrono::milliseconds(20));
    }
  }
  for (auto& t : producers) t.join();
  for (const auto& l : lanes) EXPECT_TRUE(l->empty());
}

// End-to-end: the real-thread runtime on a mailbox ring so small every
// burst spills to the overflow queue, under schedule fuzzing — results
// must still match the serial trace exactly (exactly-once delivery and
// FIFO order through both the ring and the overflow path).
TEST(SpscChannelThread, TinyRingFuzzedRuntimeMatchesSerial) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(11);
  const auto seeds = random_seeds(w.dataset->bounds(), 20, rng);
  const IntegratorParams iparams;
  const TraceLimits limits{.max_time = 15.0, .max_steps = 1500,
                           .min_speed = 1e-8};
  const auto serial = trace_all(*w.dataset, seeds, iparams, limits);

  for (const std::uint64_t fuzz : {0ull, 7ull, 23ull}) {
    SCOPED_TRACE(fuzz);
    std::vector<Particle> rejected;
    std::vector<Particle> particles =
        make_particles(w.decomp(), seeds, rejected);
    ProgramFactory factory = make_load_on_demand(
        &w.decomp(),
        partition_evenly_by_block(3, w.decomp(), std::move(particles)));

    ThreadRuntimeConfig cfg;
    cfg.num_ranks = 3;
    cfg.model = sf::testing::test_model();
    cfg.cache_blocks = 16;
    cfg.mailbox_ring_slots = 2;  // force the overflow path constantly
    cfg.schedule_fuzz_seed = fuzz;
    ThreadRuntime rt(cfg, &w.decomp(), w.source.get(), iparams, limits);
    RunMetrics m = rt.run(factory);
    m.particles.insert(m.particles.end(), rejected.begin(), rejected.end());
    std::sort(m.particles.begin(), m.particles.end(),
              [](const Particle& a, const Particle& b) { return a.id < b.id; });

    ASSERT_EQ(m.particles.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(m.particles[i].status, serial[i].status) << i;
      EXPECT_EQ(m.particles[i].steps, serial[i].steps) << i;
      EXPECT_EQ(m.particles[i].pos.x, serial[i].pos.x) << i;
    }
  }
}

}  // namespace
}  // namespace sf
