// Tests for the runtime invariant checker (src/check/, DESIGN.md §8).
//
// Each test seeds a deliberate protocol violation — a double-assigned
// particle, a streamline dropped on the floor, an over-full cache, a
// phantom termination, an illegal message — and asserts the checker
// flags it with the right structured diagnostic.  The malicious
// RankPrograms run under the real SimRuntime so the production hook
// sites, not a mock, are what catch them.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "check/invariants.hpp"
#include "runtime/sim_runtime.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

#if !SF_CHECK_INVARIANTS

TEST(InvariantChecker, CompiledOut) {
  // Release builds: the factory returns null and the hooks vanish.
  EXPECT_EQ(make_invariant_checker({}), nullptr);
  GTEST_SKIP() << "invariant checker compiled out (SF_CHECK_INVARIANTS=0)";
}

#else  // SF_CHECK_INVARIANTS

Particle live_particle(std::uint32_t id) {
  Particle p;
  p.id = id;
  p.pos = {0.1, 0.1, 0.1};
  return p;
}

// Run `fn`, require an InvariantViolation, and hand back its diagnostic.
template <typename Fn>
InvariantDiagnostic expect_violation(Fn&& fn) {
  try {
    fn();
  } catch (const InvariantViolation& v) {
    return v.diag();
  }
  ADD_FAILURE() << "expected an InvariantViolation";
  return {};
}

// A rank program that misbehaves on demand.  Every instance starts
// holding `pool` and finishes immediately after committing its sin.
class EvilProgram final : public RankProgram {
 public:
  enum class Sin {
    kNone,            // hold the pool, terminate it properly
    kDoubleSend,      // ship the same particles twice
    kDropParticles,   // discard the pool without terminating it
    kPhantomTerminate,  // credit a termination for a particle never held
    kSend,            // send the pool to rank (rank+1) once
  };

  EvilProgram(Sin sin, std::vector<Particle> pool)
      : sin_(sin), pool_(std::move(pool)) {}

  void start(RankContext& ctx) override {
    switch (sin_) {
      case Sin::kNone:
        terminate_pool(ctx);
        break;
      case Sin::kDoubleSend: {
        for (int repeat = 0; repeat < 2; ++repeat) {
          Message m;
          m.payload = ParticleBatch{kInvalidBlock, pool_};
          ctx.send((ctx.rank() + 1) % ctx.num_ranks(), std::move(m));
        }
        pool_.clear();
        break;
      }
      case Sin::kDropParticles:
        pool_.clear();
        break;
      case Sin::kPhantomTerminate: {
        Particle ghost = live_particle(9999);
        ghost.status = ParticleStatus::kMaxSteps;
        ctx.log_termination(ghost);
        break;
      }
      case Sin::kSend: {
        Message m;
        m.payload = ParticleBatch{kInvalidBlock, std::move(pool_)};
        pool_.clear();
        ctx.send((ctx.rank() + 1) % ctx.num_ranks(), std::move(m));
        break;
      }
    }
    finished_ = true;
  }

  void on_message(RankContext& ctx, Message msg) override {
    // Accept hand-offs and settle them so clean configurations conserve.
    if (auto* b = std::get_if<ParticleBatch>(&msg.payload)) {
      pool_ = std::move(b->particles);
      terminate_pool(ctx);
    }
  }
  void on_block_loaded(RankContext&, BlockId) override {}
  void on_compute_done(RankContext&) override {}
  bool finished() const override { return finished_; }
  void collect_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), done_.begin(), done_.end());
  }
  void snapshot_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), pool_.begin(), pool_.end());
  }

 private:
  void terminate_pool(RankContext& ctx) {
    for (Particle& p : pool_) {
      p.status = ParticleStatus::kMaxSteps;
      ctx.log_termination(p);
      done_.push_back(p);
    }
    pool_.clear();
  }

  Sin sin_;
  std::vector<Particle> pool_;
  std::vector<Particle> done_;
  bool finished_ = false;
};

// Rank 0 commits `sin` while holding one particle; every other rank is a
// well-behaved receiver.
RunMetrics run_evil(EvilProgram::Sin sin,
                    CheckedProtocol protocol = CheckedProtocol::kNone) {
  testing::TestWorld world = testing::rotor_world(2);
  SimRuntimeConfig cfg;
  cfg.num_ranks = 2;
  cfg.model = testing::test_model();
  cfg.cache_blocks = 4;
  cfg.checked_protocol = protocol;
  SimRuntime runtime(cfg, &world.decomp(), world.source.get(), {}, {});
  return runtime.run([sin](int rank, int) -> std::unique_ptr<RankProgram> {
    std::vector<Particle> pool;
    if (rank == 0) pool.push_back(live_particle(7));
    return std::make_unique<EvilProgram>(
        rank == 0 ? sin : EvilProgram::Sin::kNone, std::move(pool));
  });
}

TEST(InvariantChecker, CleanRunPasses) {
  const RunMetrics m = run_evil(EvilProgram::Sin::kNone);
  ASSERT_EQ(m.particles.size(), 1u);
  EXPECT_EQ(m.particles[0].id, 7u);
}

TEST(InvariantChecker, HandOffPasses) {
  // A legal send/deliver/terminate chain conserves and completes.
  const RunMetrics m = run_evil(EvilProgram::Sin::kSend);
  ASSERT_EQ(m.particles.size(), 1u);
}

TEST(InvariantChecker, DoubleAssignDetected) {
  const InvariantDiagnostic diag = expect_violation(
      [] { run_evil(EvilProgram::Sin::kDoubleSend); });
  EXPECT_EQ(diag.kind, ViolationKind::kDoubleAssign);
  EXPECT_EQ(diag.rank, 0);
  EXPECT_EQ(diag.particle, 7u);
}

TEST(InvariantChecker, LostParticleDetected) {
  const InvariantDiagnostic diag = expect_violation(
      [] { run_evil(EvilProgram::Sin::kDropParticles); });
  EXPECT_EQ(diag.kind, ViolationKind::kLostParticle);
  EXPECT_EQ(diag.particle, 7u);
}

TEST(InvariantChecker, PhantomTerminationDetected) {
  const InvariantDiagnostic diag = expect_violation(
      [] { run_evil(EvilProgram::Sin::kPhantomTerminate); });
  EXPECT_EQ(diag.kind, ViolationKind::kPhantomTermination);
  EXPECT_EQ(diag.rank, 0);
  EXPECT_EQ(diag.particle, 9999u);
}

TEST(InvariantChecker, LoadOnDemandSilenceEnforced) {
  // Under the load-on-demand protocol ranks never communicate; any send
  // is illegal no matter the payload.
  const InvariantDiagnostic diag = expect_violation([] {
    run_evil(EvilProgram::Sin::kSend, CheckedProtocol::kLoadOnDemand);
  });
  EXPECT_EQ(diag.kind, ViolationKind::kIllegalMessage);
  EXPECT_EQ(diag.rank, 0);
}

TEST(InvariantChecker, DiagnosticNamesRankTimeAndParticle) {
  try {
    run_evil(EvilProgram::Sin::kDoubleSend);
    FAIL() << "expected an InvariantViolation";
  } catch (const InvariantViolation& v) {
    const std::string what = v.what();
    EXPECT_NE(what.find("double-assign"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("t="), std::string::npos) << what;
    EXPECT_NE(what.find("particle 7"), std::string::npos) << what;
  }
}

// --- direct checker-model tests (no runtime) -----------------------------

CheckerConfig direct_config(std::size_t cache_blocks) {
  CheckerConfig cfg;
  cfg.num_ranks = 2;
  cfg.cache_blocks = cache_blocks;
  return cfg;
}

TEST(InvariantChecker, CacheOverflowDetected) {
  InvariantChecker ck(direct_config(2));
  ck.on_block_insert(0, 1, {1}, 0.0);
  ck.on_block_insert(0, 2, {2, 1}, 0.1);
  // A buggy cache that fails to evict: three resident with capacity 2.
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_block_insert(0, 3, {3, 2, 1}, 0.2); });
  EXPECT_EQ(diag.kind, ViolationKind::kCacheOverflow);
  EXPECT_EQ(diag.rank, 0);
  EXPECT_EQ(diag.block, 3);
}

TEST(InvariantChecker, CacheMismatchDetected) {
  InvariantChecker ck(direct_config(2));
  ck.on_block_insert(0, 1, {1}, 0.0);
  ck.on_block_insert(0, 2, {2, 1}, 0.1);
  // Eviction happened but in FIFO order, not LRU: block 1 was touched so
  // block 2 should have been the victim.
  ck.on_block_touch(0, 1);
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_block_insert(0, 3, {3, 2}, 0.2); });
  EXPECT_EQ(diag.kind, ViolationKind::kCacheMismatch);
}

TEST(InvariantChecker, LruModelAcceptsCorrectCache) {
  // Mirror of BlockCache semantics: insert/touch/evict in LRU order.
  InvariantChecker ck(direct_config(2));
  ck.on_block_insert(0, 1, {1}, 0.0);
  ck.on_block_insert(0, 2, {2, 1}, 0.1);
  ck.on_block_touch(0, 1);                  // 1 becomes MRU
  ck.on_block_insert(0, 3, {3, 1}, 0.2);    // evicts 2
  ck.on_block_insert(0, 1, {1, 3}, 0.3);    // re-insert touches only
}

TEST(InvariantChecker, PrematureTerminationDetected) {
  CheckerConfig cfg = direct_config(4);
  cfg.protocol = CheckedProtocol::kStaticAllocation;
  InvariantChecker ck(cfg);
  ck.on_seeded(1, {live_particle(1)});
  Message done;
  done.from = 0;
  done.payload = DoneSignal{};
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_send(0, 1, done, 1.0); });
  EXPECT_EQ(diag.kind, ViolationKind::kPrematureTermination);
}

TEST(InvariantChecker, SecondTerminateBroadcastDetected) {
  CheckerConfig cfg = direct_config(4);
  cfg.protocol = CheckedProtocol::kStaticAllocation;
  InvariantChecker ck(cfg);
  Particle p = live_particle(1);
  ck.on_seeded(1, {p});
  p.status = ParticleStatus::kMaxTime;
  ck.on_terminated(1, p, /*first_time=*/true, 0.5);
  Message done;
  done.from = 0;
  done.payload = DoneSignal{};
  ck.on_send(0, 1, done, 1.0);
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_send(0, 1, done, 2.0); });
  EXPECT_EQ(diag.kind, ViolationKind::kDoubleTermination);
  EXPECT_EQ(diag.rank, 1);
}

TEST(InvariantChecker, HybridRoutingRulesEnforced) {
  CheckerConfig cfg = direct_config(4);
  cfg.protocol = CheckedProtocol::kHybrid;
  cfg.num_ranks = 4;
  cfg.num_masters = 1;  // rank 0 master, ranks 1-3 slaves
  InvariantChecker ck(cfg);

  Message status;
  status.from = 1;
  status.payload = StatusUpdate{};
  ck.on_send(1, 0, status, 0.1);  // slave -> its master: legal

  Message sideways = status;
  sideways.from = 2;
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_send(2, 1, sideways, 0.2); });
  EXPECT_EQ(diag.kind, ViolationKind::kIllegalMessage);

  Message cmd;
  cmd.from = 1;
  Command load;
  load.type = Command::Type::kLoad;
  load.block = 0;
  cmd.payload = load;
  const InvariantDiagnostic diag2 = expect_violation(
      [&] { ck.on_send(1, 2, cmd, 0.3); });
  EXPECT_EQ(diag2.kind, ViolationKind::kIllegalMessage);
}

TEST(InvariantChecker, DuplicateTerminationOutsideFaultModeDetected) {
  InvariantChecker ck(direct_config(4));
  Particle p = live_particle(3);
  ck.on_seeded(0, {p});
  ck.on_seeded(1, {p});  // two copies of one id (already suspect)
  p.status = ParticleStatus::kMaxTime;
  ck.on_terminated(0, p, /*first_time=*/true, 0.5);
  const InvariantDiagnostic diag = expect_violation(
      [&] { ck.on_terminated(1, p, /*first_time=*/true, 0.6); });
  EXPECT_EQ(diag.kind, ViolationKind::kDuplicateTermination);
}

#endif  // SF_CHECK_INVARIANTS

}  // namespace
}  // namespace sf
