#include "core/block_decomposition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/rng.hpp"

namespace sf {
namespace {

const AABB kDomain{{-1, -1, -1}, {1, 1, 1}};

TEST(BlockDecomposition, Validation) {
  EXPECT_THROW(BlockDecomposition(kDomain, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(BlockDecomposition(AABB{}, 2, 2, 2), std::invalid_argument);
}

TEST(BlockDecomposition, IdCoordRoundTrip) {
  const BlockDecomposition d(kDomain, 4, 3, 2);
  EXPECT_EQ(d.num_blocks(), 24);
  for (BlockId id = 0; id < d.num_blocks(); ++id) {
    EXPECT_EQ(d.id_of(d.coords_of(id)), id);
  }
}

TEST(BlockDecomposition, BlockBoundsTileTheDomain) {
  const BlockDecomposition d(kDomain, 2, 2, 2);
  double volume = 0.0;
  for (BlockId id = 0; id < d.num_blocks(); ++id) {
    volume += d.block_bounds(id).volume();
  }
  EXPECT_NEAR(volume, kDomain.volume(), 1e-12);
}

TEST(BlockDecomposition, OwnershipIsUniqueAndConsistent) {
  const BlockDecomposition d(kDomain, 3, 3, 3);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const Vec3 p{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const BlockId owner = d.block_of(p);
    ASSERT_NE(owner, kInvalidBlock);
    EXPECT_TRUE(d.block_bounds(owner).contains(p))
        << p << " not in bounds of its owner block " << owner;
  }
}

TEST(BlockDecomposition, SharedFacesHaveOneOwner) {
  const BlockDecomposition d(kDomain, 2, 2, 2);
  // A point exactly on the x = 0 internal face belongs to the upper block.
  const BlockId b = d.block_of({0.0, -0.5, -0.5});
  EXPECT_EQ(d.coords_of(b).i, 1);
}

TEST(BlockDecomposition, DomainHighFaceOwnedByLastBlock) {
  const BlockDecomposition d(kDomain, 2, 2, 2);
  const BlockId b = d.block_of({1.0, 1.0, 1.0});
  EXPECT_EQ(b, d.num_blocks() - 1);
}

TEST(BlockDecomposition, OutsideIsInvalid) {
  const BlockDecomposition d(kDomain, 2, 2, 2);
  EXPECT_EQ(d.block_of({1.5, 0, 0}), kInvalidBlock);
  EXPECT_EQ(d.block_of({0, 0, -1.0001}), kInvalidBlock);
}

TEST(BlockDecomposition, GhostBoundsInflateByCells) {
  const BlockDecomposition d(kDomain, 2, 2, 2);
  // Block core is 1.0 wide; with 9 nodes (8 cells) a cell is 0.125, so a
  // 2-cell ghost margin is 0.25.
  const AABB g = d.ghost_bounds(0, 9, 2);
  const AABB core = d.block_bounds(0);
  EXPECT_NEAR(core.lo.x - g.lo.x, 0.25, 1e-12);
  EXPECT_NEAR(g.hi.y - core.hi.y, 0.25, 1e-12);
}

TEST(BlockDecomposition, FaceNeighborsCornerAndCenter) {
  const BlockDecomposition d(kDomain, 3, 3, 3);
  // Corner block: 3 neighbours.
  EXPECT_EQ(d.face_neighbors(0).size(), 3u);
  // Centre block (1,1,1): 6 neighbours.
  const BlockId center = d.id_of({1, 1, 1});
  const auto n = d.face_neighbors(center);
  EXPECT_EQ(n.size(), 6u);
  const std::set<BlockId> ns(n.begin(), n.end());
  EXPECT_TRUE(ns.count(d.id_of({0, 1, 1})));
  EXPECT_TRUE(ns.count(d.id_of({1, 2, 1})));
}

TEST(BlockDecomposition, BlocksIntersectingBox) {
  const BlockDecomposition d(kDomain, 4, 4, 4);
  // A box covering one octant touches 2x2x2 blocks.
  const auto ids = d.blocks_intersecting(AABB{{0.01, 0.01, 0.01}, {0.99, 0.99, 0.99}});
  EXPECT_EQ(ids.size(), 8u);
  // Whole domain: every block.
  EXPECT_EQ(d.blocks_intersecting(kDomain).size(), 64u);
}

// Property sweep: ownership by index arithmetic must agree with bounds
// containment across decomposition shapes.
class DecompositionShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DecompositionShapes, EveryPointFindsItsBlock) {
  const auto [nx, ny, nz] = GetParam();
  const BlockDecomposition d(kDomain, nx, ny, nz);
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const BlockId owner = d.block_of(p);
    ASSERT_NE(owner, kInvalidBlock);
    EXPECT_TRUE(d.block_bounds(owner).contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompositionShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{8, 1, 1},
                      std::tuple{1, 1, 8}, std::tuple{2, 3, 5},
                      std::tuple{8, 8, 8}, std::tuple{16, 4, 2}));

}  // namespace
}  // namespace sf
