#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_engine.hpp"

namespace sf {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule(static_cast<double>(fired), chain);
  };
  q.schedule(0.0, chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 5);
}

TEST(SimEngine, ClockFollowsEvents) {
  SimEngine e;
  double seen = -1.0;
  e.schedule_at(2.5, [&] { seen = e.now(); });
  e.schedule_after(1.0, [&] { EXPECT_DOUBLE_EQ(e.now(), 1.0); });
  const SimTime end = e.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(end, 2.5);
}

TEST(SimEngine, ScheduleAfterIsRelativeToNow) {
  SimEngine e;
  double fired_at = -1.0;
  e.schedule_at(10.0, [&] {
    e.schedule_after(5.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SimEngine, AbortPropagates) {
  SimEngine e;
  e.schedule_at(1.0, [] { throw SimAbort("boom"); });
  e.schedule_at(2.0, [] { FAIL() << "must not run after abort"; });
  EXPECT_THROW(e.run(), SimAbort);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

TEST(SimEngine, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimEngine e;
    std::vector<double> times;
    for (int i = 0; i < 100; ++i) {
      e.schedule_at(static_cast<double>((i * 37) % 10), [&times, &e] {
        times.push_back(e.now());
      });
    }
    e.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sf
