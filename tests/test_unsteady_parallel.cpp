#include "analysis/pathline_lod.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/pathlines.hpp"
#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

// A time-varying field with an exact solution: uniform flow whose x
// velocity ramps linearly in time, v = (1 + 2t, 0, 0).
struct Slices {
  BlockDecomposition decomp{{{0, 0, 0}, {1, 1, 1}}, 1, 1, 1};
  std::vector<DatasetPtr> slices;
  std::vector<double> times;
};

Slices ramp_slices(int n_slices, const AABB& box, int blocks) {
  Slices s;
  s.decomp = BlockDecomposition(box, blocks, blocks, blocks);
  for (int i = 0; i < n_slices; ++i) {
    const double t = static_cast<double>(i) / (n_slices - 1);
    auto field =
        std::make_shared<UniformField>(Vec3{1.0 + 2.0 * t, 0, 0}, box);
    s.slices.push_back(
        std::make_shared<BlockedDataset>(field, s.decomp, 5, 1));
    s.times.push_back(t);
  }
  return s;
}

Slices gyre_slices(int n_slices, double t_end, int blocks) {
  Slices s;
  const DoubleGyreField gyre;
  s.decomp = BlockDecomposition(gyre.bounds(), blocks, blocks, 1);
  for (int i = 0; i < n_slices; ++i) {
    const double t = t_end * i / (n_slices - 1);
    // Freeze the gyre at time t for this slice.
    class Frozen final : public VectorField {
     public:
      Frozen(double time) : t_(time) {}
      bool sample(const Vec3& p, Vec3& out) const override {
        return f_.sample(p, t_, out);
      }
      AABB bounds() const override { return f_.bounds(); }

     private:
      DoubleGyreField f_;
      double t_;
    };
    s.slices.push_back(std::make_shared<BlockedDataset>(
        std::make_shared<Frozen>(t), s.decomp, 17, 2));
    s.times.push_back(t);
  }
  return s;
}

TEST(UnsteadyTracer, EncodingRoundTrips) {
  auto s = ramp_slices(3, {{0, 0, 0}, {1, 1, 1}}, 2);
  UnsteadyTracer tracer(&s.decomp, s.times, {}, {});
  EXPECT_EQ(tracer.num_spacetime_blocks(), 3 * 8);
  for (int slice = 0; slice < 3; ++slice) {
    for (BlockId b = 0; b < 8; ++b) {
      const BlockId id = tracer.encode({slice, b});
      EXPECT_EQ(tracer.decode(id).slice, slice);
      EXPECT_EQ(tracer.decode(id).spatial, b);
    }
  }
}

TEST(UnsteadyTracer, NeedsReportsBracketPair) {
  auto s = ramp_slices(3, {{0, 0, 0}, {1, 1, 1}}, 2);
  UnsteadyTracer tracer(&s.decomp, s.times, {}, {});
  Particle p;
  p.pos = {0.1, 0.1, 0.1};
  p.time = 0.25;  // inside bracket [0, 0.5]
  BlockId lo, hi;
  ASSERT_TRUE(tracer.needs(p, lo, hi));
  EXPECT_EQ(tracer.decode(lo).slice, 0);
  EXPECT_EQ(tracer.decode(hi).slice, 1);
  EXPECT_EQ(tracer.decode(lo).spatial, s.decomp.block_of(p.pos));

  p.time = 1.0;  // at/after the last slice: nothing more to do
  EXPECT_FALSE(tracer.needs(p, lo, hi));
  p.time = 0.25;
  p.pos = {5, 5, 5};
  EXPECT_FALSE(tracer.needs(p, lo, hi));
}

TEST(UnsteadyTracer, RampFlowHasExactDisplacement) {
  // x(t) = x0 + t + t^2 for v = 1 + 2t; from x0=0.05 over t in [0,0.6]:
  // displacement 0.96 (still inside the box).
  const AABB box{{0, 0, 0}, {2, 1, 1}};
  auto s = ramp_slices(6, box, 2);
  IntegratorParams ip;
  ip.tol = 1e-10;
  TraceLimits lim;
  lim.max_time = 0.6;
  UnsteadyTracer tracer(&s.decomp, s.times, ip, lim);
  TimeSliceBlockSource source(s.slices);

  Particle p;
  p.pos = {0.05, 0.5, 0.5};
  std::vector<GridPtr> grids;
  for (BlockId id = 0; id < source.num_blocks(); ++id) {
    grids.push_back(source.load(id));
  }
  const auto out = tracer.advance(
      p, [&grids](BlockId id) { return grids[id].get(); });
  EXPECT_EQ(out.status, ParticleStatus::kMaxTime);
  EXPECT_NEAR(p.pos.x, 0.05 + 0.6 + 0.36, 1e-6);
  EXPECT_NEAR(p.time, 0.6, 1e-12);
}

TEST(UnsteadyTracer, StopsAtMissingSliceBlockAndResumes) {
  const AABB box{{0, 0, 0}, {2, 1, 1}};
  auto s = ramp_slices(4, box, 2);
  UnsteadyTracer tracer(&s.decomp, s.times, {}, {.max_time = 1.0,
                                                 .max_steps = 100000,
                                                 .min_speed = 0.0});
  TimeSliceBlockSource source(s.slices);

  std::map<BlockId, GridPtr> have;
  auto access = [&](BlockId id) -> const StructuredGrid* {
    auto it = have.find(id);
    return it == have.end() ? nullptr : it->second.get();
  };

  Particle p;
  p.pos = {0.05, 0.5, 0.5};
  int fetches = 0;
  AdvanceOutcome out = tracer.advance(p, access);
  while (out.status == ParticleStatus::kActive && fetches < 100) {
    have[out.blocking_block] = source.load(out.blocking_block);
    out = tracer.advance(p, access);
    ++fetches;
  }
  EXPECT_TRUE(is_terminal(out.status));
  // It needed multiple slice pairs and spatial blocks along the way.
  EXPECT_GE(fetches, 4);
}

TEST(PathlineLod, MatchesSerialUnsteadyTracerBitForBit) {
  auto s = gyre_slices(9, 8.0, 4);
  Rng rng(3);
  std::vector<Vec3> seeds;
  for (int i = 0; i < 20; ++i) {
    seeds.push_back({rng.uniform(0.2, 1.8), rng.uniform(0.2, 0.8), 0.0});
  }

  PathlineExperimentConfig cfg;
  cfg.runtime.num_ranks = 4;
  cfg.runtime.model = sf::testing::test_model();
  cfg.runtime.cache_blocks = 8;
  cfg.limits.max_time = 8.0;
  cfg.limits.max_steps = 5000;
  const RunMetrics m = run_pathline_experiment(cfg, s.decomp, s.slices,
                                               s.times, seeds);
  ASSERT_FALSE(m.failed_oom);
  ASSERT_EQ(m.particles.size(), seeds.size());

  // Serial reference with every spacetime block available.
  UnsteadyTracer tracer(&s.decomp, s.times, cfg.integrator, cfg.limits);
  TimeSliceBlockSource source(s.slices);
  std::vector<GridPtr> grids;
  for (BlockId id = 0; id < source.num_blocks(); ++id) {
    grids.push_back(source.load(id));
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    Particle p;
    p.id = static_cast<std::uint32_t>(i);
    p.pos = seeds[i];
    p.time = s.times.front();
    tracer.advance(p, [&grids](BlockId id) { return grids[id].get(); });
    EXPECT_EQ(m.particles[i].steps, p.steps) << i;
    EXPECT_EQ(m.particles[i].pos.x, p.pos.x) << i;
    EXPECT_EQ(m.particles[i].pos.y, p.pos.y) << i;
    EXPECT_EQ(m.particles[i].status, p.status) << i;
  }
}

TEST(PathlineLod, ApproximatesTheContinuousGyre) {
  // Slice interpolation should track the true unsteady gyre closely
  // when slices are dense.
  auto s = gyre_slices(41, 5.0, 4);
  const std::vector<Vec3> seeds{{0.7, 0.4, 0.0}, {1.3, 0.6, 0.0}};

  PathlineExperimentConfig cfg;
  cfg.runtime.num_ranks = 2;
  cfg.runtime.model = sf::testing::test_model();
  cfg.runtime.cache_blocks = 16;
  cfg.integrator.tol = 1e-9;
  cfg.limits.max_time = 5.0;
  cfg.limits.max_steps = 50000;
  const RunMetrics m = run_pathline_experiment(cfg, s.decomp, s.slices,
                                               s.times, seeds);
  ASSERT_FALSE(m.failed_oom);
  ASSERT_EQ(m.particles.size(), 2u);

  const DoubleGyreField gyre;
  IntegratorParams ip;
  ip.tol = 1e-10;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const Vec3 truth = advect(gyre, seeds[i], 0.0, 5.0, ip);
    EXPECT_LT(distance(m.particles[i].pos, truth), 0.05) << i;
  }
}

TEST(PathlineLod, SliceChurnCostsMoreIoThanSteadyTracing) {
  // §8's observation: pathlines re-read per slice pair.  Compare the
  // loads of a pathline run against a single-slice-pair equivalent.
  auto many = gyre_slices(17, 8.0, 4);
  Rng rng(5);
  std::vector<Vec3> seeds;
  for (int i = 0; i < 30; ++i) {
    seeds.push_back({rng.uniform(0.2, 1.8), rng.uniform(0.2, 0.8), 0.0});
  }
  PathlineExperimentConfig cfg;
  cfg.runtime.num_ranks = 4;
  cfg.runtime.model = sf::testing::test_model();
  cfg.runtime.cache_blocks = 12;
  cfg.limits.max_time = 8.0;
  cfg.limits.max_steps = 5000;
  const RunMetrics unsteady = run_pathline_experiment(
      cfg, many.decomp, many.slices, many.times, seeds);
  ASSERT_FALSE(unsteady.failed_oom);

  auto two = gyre_slices(2, 8.0, 4);
  const RunMetrics steadyish = run_pathline_experiment(
      cfg, two.decomp, two.slices, two.times, seeds);
  ASSERT_FALSE(steadyish.failed_oom);

  EXPECT_GT(unsteady.total_blocks_loaded(),
            2 * steadyish.total_blocks_loaded());
  EXPECT_GT(unsteady.total_io_time(), steadyish.total_io_time());
}

}  // namespace
}  // namespace sf
