#include "runtime/block_cache.hpp"

#include <gtest/gtest.h>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

GridPtr dummy_grid() {
  return std::make_shared<StructuredGrid>(AABB{{0, 0, 0}, {1, 1, 1}}, 2, 2,
                                          2);
}

TEST(BlockCache, RejectsZeroCapacity) {
  EXPECT_THROW(BlockCache(0), std::invalid_argument);
}

TEST(BlockCache, InsertFindContains) {
  BlockCache cache(4);
  EXPECT_EQ(cache.find(1), nullptr);
  auto g = dummy_grid();
  cache.insert(1, g);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.find(1), g.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.loads(), 1u);
  EXPECT_EQ(cache.purges(), 0u);
}

TEST(BlockCache, EvictsLeastRecentlyUsed) {
  BlockCache cache(2);
  cache.insert(1, dummy_grid());
  cache.insert(2, dummy_grid());
  cache.find(1);              // 1 becomes MRU
  cache.insert(3, dummy_grid());  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.purges(), 1u);
  EXPECT_EQ(cache.loads(), 3u);
}

TEST(BlockCache, ReinsertTouchesWithoutCounting) {
  BlockCache cache(2);
  cache.insert(1, dummy_grid());
  cache.insert(2, dummy_grid());
  cache.insert(1, dummy_grid());  // touch, not a load
  EXPECT_EQ(cache.loads(), 2u);
  cache.insert(3, dummy_grid());  // evicts 2 (1 was touched)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(BlockCache, ResidentIsMruFirst) {
  BlockCache cache(3);
  cache.insert(1, dummy_grid());
  cache.insert(2, dummy_grid());
  cache.insert(3, dummy_grid());
  cache.find(1);
  EXPECT_EQ(cache.resident(), (std::vector<BlockId>{1, 3, 2}));
}

TEST(BlockCache, EraseIsNotAPurge) {
  BlockCache cache(2);
  cache.insert(1, dummy_grid());
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.purges(), 0u);
  cache.erase(99);  // erasing a missing block is a no-op
}

// Property: under arbitrary access patterns the cache never exceeds
// capacity and loads - purges == resident.
class CacheCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheCapacity, InvariantsHoldUnderChurn) {
  const std::size_t cap = GetParam();
  BlockCache cache(cap);
  for (int i = 0; i < 500; ++i) {
    cache.insert((i * 7) % 23, dummy_grid());
    cache.find((i * 3) % 23);
    ASSERT_LE(cache.size(), cap);
    ASSERT_EQ(cache.loads() - cache.purges(), cache.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacity,
                         ::testing::Values(1u, 2u, 5u, 23u, 100u));

}  // namespace
}  // namespace sf
