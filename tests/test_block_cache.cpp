#include "runtime/block_cache.hpp"

#include <gtest/gtest.h>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

GridPtr dummy_grid() {
  return std::make_shared<StructuredGrid>(AABB{{0, 0, 0}, {1, 1, 1}}, 2, 2,
                                          2);
}

TEST(BlockCache, RejectsZeroCapacity) {
  EXPECT_THROW(BlockCache(0), std::invalid_argument);
}

TEST(BlockCache, InsertFindContains) {
  BlockCache cache(4);
  EXPECT_EQ(cache.find(1), nullptr);
  auto g = dummy_grid();
  cache.insert(1, g);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.find(1), g.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.loads(), 1u);
  EXPECT_EQ(cache.purges(), 0u);
}

TEST(BlockCache, EvictsLeastRecentlyUsed) {
  BlockCache cache(2);
  cache.insert(1, dummy_grid());
  cache.insert(2, dummy_grid());
  cache.find(1);              // 1 becomes MRU
  cache.insert(3, dummy_grid());  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.purges(), 1u);
  EXPECT_EQ(cache.loads(), 3u);
}

TEST(BlockCache, ReinsertTouchesWithoutCounting) {
  BlockCache cache(2);
  cache.insert(1, dummy_grid());
  cache.insert(2, dummy_grid());
  cache.insert(1, dummy_grid());  // touch, not a load
  EXPECT_EQ(cache.loads(), 2u);
  cache.insert(3, dummy_grid());  // evicts 2 (1 was touched)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(BlockCache, ResidentIsMruFirst) {
  BlockCache cache(3);
  cache.insert(1, dummy_grid());
  cache.insert(2, dummy_grid());
  cache.insert(3, dummy_grid());
  cache.find(1);
  EXPECT_EQ(cache.resident(), (std::vector<BlockId>{1, 3, 2}));
}

TEST(BlockCache, EraseIsNotAPurge) {
  BlockCache cache(2);
  cache.insert(1, dummy_grid());
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.purges(), 0u);
  cache.erase(99);  // erasing a missing block is a no-op
}

TEST(BlockCache, HitMissCounters) {
  BlockCache cache(2);
  EXPECT_EQ(cache.find(1), nullptr);  // miss
  cache.insert(1, dummy_grid());
  cache.find(1);  // hit
  cache.find(1);  // hit
  cache.find(2);  // miss
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(BlockCache, PinnedBlockSkippedByEviction) {
  BlockCache cache(2);
  cache.insert(1, dummy_grid());
  cache.insert(2, dummy_grid());  // LRU order: [2, 1]
  cache.pin(1);
  cache.insert(3, dummy_grid());  // 1 is LRU-most but pinned: evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.purges(), 1u);
}

TEST(BlockCache, AllPinnedOverflowDrainsOnUnpin) {
  BlockCache cache(1);
  cache.insert(1, dummy_grid());
  cache.pin(1);
  cache.pin(2);  // before the insert: protects the in-flight target
  cache.insert(2, dummy_grid());
  // Every resident block is pinned: the cache overflows temporarily.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  cache.unpin(1);  // deferred eviction reclaims the overflow
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.purges(), 1u);
}

TEST(BlockCache, PinIntentSurvivesNonResidency) {
  BlockCache cache(2);
  cache.pin(7);  // not resident yet: the intent is recorded anyway
  EXPECT_TRUE(cache.pinned(7));
  cache.insert(7, dummy_grid());
  cache.insert(1, dummy_grid());  // [1, 7]
  cache.insert(2, dummy_grid());  // 7 pinned: evicts 1
  EXPECT_TRUE(cache.contains(7));
  EXPECT_FALSE(cache.contains(1));
  cache.unpin(7);
  EXPECT_FALSE(cache.pinned(7));
}

TEST(BlockCache, NestedPinsReleaseOnLastUnpin) {
  BlockCache cache(1);
  cache.insert(1, dummy_grid());
  cache.pin(1);
  cache.pin(1);
  cache.insert(2, dummy_grid());  // overflow: 1 is pinned, 2 unpinned...
  // ...so the eviction walk reclaims 2 itself (the only unpinned entry).
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  cache.unpin(1);
  EXPECT_TRUE(cache.pinned(1));  // one pin still held
  cache.unpin(1);
  EXPECT_FALSE(cache.pinned(1));
}

// Property: under arbitrary access patterns the cache never exceeds
// capacity and loads - purges == resident.
class CacheCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheCapacity, InvariantsHoldUnderChurn) {
  const std::size_t cap = GetParam();
  BlockCache cache(cap);
  for (int i = 0; i < 500; ++i) {
    cache.insert((i * 7) % 23, dummy_grid());
    cache.find((i * 3) % 23);
    ASSERT_LE(cache.size(), cap);
    ASSERT_EQ(cache.loads() - cache.purges(), cache.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacity,
                         ::testing::Values(1u, 2u, 5u, 23u, 100u));

}  // namespace
}  // namespace sf
