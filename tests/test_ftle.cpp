#include "analysis/ftle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

TEST(Symmetric3Eigen, DiagonalMatrix) {
  const double m[3][3] = {{3, 0, 0}, {0, 5, 0}, {0, 0, 1}};
  EXPECT_DOUBLE_EQ(symmetric3_max_eigenvalue(m), 5.0);
}

TEST(Symmetric3Eigen, KnownSymmetricMatrix) {
  // Eigenvalues of [[2,1,0],[1,2,0],[0,0,7]] are {1, 3, 7}.
  const double m[3][3] = {{2, 1, 0}, {1, 2, 0}, {0, 0, 7}};
  EXPECT_NEAR(symmetric3_max_eigenvalue(m), 7.0, 1e-12);
  const double m2[3][3] = {{2, 1, 0}, {1, 2, 0}, {0, 0, 0.5}};
  EXPECT_NEAR(symmetric3_max_eigenvalue(m2), 3.0, 1e-12);
}

TEST(Symmetric3Eigen, IdentityIsOne) {
  const double m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  EXPECT_NEAR(symmetric3_max_eigenvalue(m), 1.0, 1e-12);
}

TEST(Ftle, LinearSaddleGivesLambdaEverywhere) {
  // For v = (lx, -ly, 0), the flow map stretches by exp(l T); FTLE = l
  // exactly, independent of position and horizon.
  const double lambda = 0.8;
  const SaddleField field(lambda);
  FtleParams prm;
  prm.region = AABB{{-1, -1, -0.2}, {1, 1, 0.2}};
  prm.nx = 9;
  prm.ny = 9;
  prm.nz = 3;
  // Keep e^(lambda T) within the field bounds so the flow map is never
  // clipped at the domain edge.
  prm.horizon = 1.5;
  prm.integrator.tol = 1e-10;
  const FtleField f = compute_ftle(field, prm);
  ASSERT_EQ(f.values.size(), 9u * 9u * 3u);
  for (const double v : f.values) {
    EXPECT_NEAR(v, lambda, 0.02);
  }
}

TEST(Ftle, BackwardHorizonOnSaddleAlsoLambda) {
  // Backward time swaps stable/unstable manifolds; magnitude stays l.
  const SaddleField field(0.5);
  FtleParams prm;
  prm.region = AABB{{-1, -1, -0.2}, {1, 1, 0.2}};
  prm.nx = 7;
  prm.ny = 7;
  prm.nz = 3;
  prm.horizon = -2.0;
  prm.integrator.tol = 1e-10;
  const FtleField f = compute_ftle(field, prm);
  for (const double v : f.values) EXPECT_NEAR(v, 0.5, 0.02);
}

TEST(Ftle, UniformFlowHasZeroStretching) {
  const UniformField field({0.05, 0.02, 0.0},
                           AABB{{-10, -10, -1}, {10, 10, 1}});
  FtleParams prm;
  prm.region = AABB{{-1, -1, -0.5}, {1, 1, 0.5}};
  prm.nx = 6;
  prm.ny = 6;
  prm.nz = 3;
  prm.horizon = 5.0;
  const FtleField f = compute_ftle(field, prm);
  for (const double v : f.values) EXPECT_NEAR(v, 0.0, 1e-6);
}

TEST(Ftle, DoubleGyreRidgeExceedsBackground) {
  // The double gyre's FTLE field has a pronounced ridge; max should
  // dominate the mean — the standard qualitative check.
  const DoubleGyreField field;
  FtleParams prm;
  prm.region = AABB{{0.05, 0.05, 0}, {1.95, 0.95, 0}};
  prm.region.lo.z = 0.0;
  prm.region.hi.z = 0.0;
  prm.nx = 40;
  prm.ny = 20;
  prm.nz = 1;
  prm.horizon = 10.0;
  prm.integrator.tol = 1e-7;
  const FtleField f = compute_ftle(field, prm);
  std::vector<double> sorted = f.values;
  std::sort(sorted.begin(), sorted.end());
  const double mx = sorted.back();
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(mx, 0.25);
  // The LCS ridge is sparse: the max clearly exceeds the median
  // background stretching level.
  EXPECT_GT(mx - median, 0.12);
}

TEST(Ftle, ValidatesLattice) {
  const SaddleField field;
  FtleParams prm;
  prm.region = field.bounds();
  prm.nx = 1;
  EXPECT_THROW(compute_ftle(field, prm), std::invalid_argument);
}

TEST(Ftle, AtAccessorIndexesXFastest) {
  FtleField f;
  f.nx = 2;
  f.ny = 2;
  f.nz = 1;
  f.values = {0, 1, 2, 3};
  EXPECT_EQ(f.at(0, 0, 0), 0);
  EXPECT_EQ(f.at(1, 0, 0), 1);
  EXPECT_EQ(f.at(0, 1, 0), 2);
  EXPECT_EQ(f.at(1, 1, 0), 3);
}

}  // namespace
}  // namespace sf
