#include "io/block_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

namespace fs = std::filesystem;

class BlockStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sf_store_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DatasetPtr make_dataset() {
    auto field = std::make_shared<ABCField>();
    const BlockDecomposition decomp(field->bounds(), 2, 2, 2);
    return std::make_shared<BlockedDataset>(field, decomp, 5, 1);
  }

  fs::path dir_;
};

TEST_F(BlockStoreTest, RoundTripPreservesEverything) {
  auto ds = make_dataset();
  BlockStore::write(dir_, *ds);

  const BlockStore store(dir_);
  EXPECT_EQ(store.num_blocks(), 8);
  EXPECT_EQ(store.nodes_per_axis(), 5);
  EXPECT_EQ(store.ghost_cells(), 1);
  EXPECT_EQ(store.decomposition().nbx(), 2);

  for (BlockId id = 0; id < 8; ++id) {
    const GridPtr original = ds->block(id);
    const GridPtr loaded = store.load_block(id);
    ASSERT_EQ(loaded->num_nodes(), original->num_nodes());
    EXPECT_EQ(loaded->bounds(), original->bounds());
    EXPECT_EQ(loaded->data(), original->data());
  }
}

TEST_F(BlockStoreTest, MissingManifestThrows) {
  EXPECT_THROW(BlockStore(dir_ / "nope"), std::runtime_error);
}

TEST_F(BlockStoreTest, BadBlockIdThrows) {
  BlockStore::write(dir_, *make_dataset());
  const BlockStore store(dir_);
  EXPECT_THROW(store.load_block(-1), std::out_of_range);
  EXPECT_THROW(store.load_block(8), std::out_of_range);
}

TEST_F(BlockStoreTest, CorruptionIsDetected) {
  BlockStore::write(dir_, *make_dataset());
  const BlockStore store(dir_);
  // Flip a payload byte in block 3.
  const fs::path victim = store.block_path(3);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-8, std::ios::end);
    const char junk = 0x5a;
    f.write(&junk, 1);
  }
  EXPECT_THROW(store.load_block(3), std::runtime_error);
  // Other blocks stay readable.
  EXPECT_NO_THROW(store.load_block(2));
}

TEST_F(BlockStoreTest, TruncationIsDetected) {
  BlockStore::write(dir_, *make_dataset());
  const BlockStore store(dir_);
  const fs::path victim = store.block_path(1);
  fs::resize_file(victim, fs::file_size(victim) / 2);
  EXPECT_THROW(store.load_block(1), std::runtime_error);
}

TEST_F(BlockStoreTest, FileBytesAreHeaderPlusPayload) {
  auto ds = make_dataset();
  BlockStore::write(dir_, *ds);
  const BlockStore store(dir_);
  EXPECT_GT(store.block_file_bytes(0), ds->block_payload_bytes());
  EXPECT_LT(store.block_file_bytes(0), ds->block_payload_bytes() + 256);
}

TEST_F(BlockStoreTest, DiskBlockSourceLoadsFreshCopies) {
  auto ds = make_dataset();
  BlockStore::write(dir_, *ds);
  auto store = std::make_shared<BlockStore>(dir_);
  const DiskBlockSource source(store);
  EXPECT_EQ(source.num_blocks(), 8);
  // Every load is a real read: distinct objects (no hidden memoization,
  // redundant I/O really happens — the Load On Demand cost).
  EXPECT_NE(source.load(0).get(), source.load(0).get());
  EXPECT_EQ(source.load(0)->data(), ds->block(0)->data());
  EXPECT_EQ(source.block_bytes(0), store->block_file_bytes(0));

  const DiskBlockSource modelled(store, 1 << 20);
  EXPECT_EQ(modelled.block_bytes(5), 1u << 20);
}

TEST_F(BlockStoreTest, RewriteOverwritesCleanly) {
  auto ds = make_dataset();
  BlockStore::write(dir_, *ds);
  BlockStore::write(dir_, *ds);  // second write over the same directory
  const BlockStore store(dir_);
  EXPECT_NO_THROW(store.load_block(7));
}

}  // namespace
}  // namespace sf
