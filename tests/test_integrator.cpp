#include "core/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

TEST(Rk4Step, ExactForUniformField) {
  const UniformField f({1, 2, 0});
  const StepResult r = rk4_step(f, {0, 0, 0}, 0.0, 0.1);
  ASSERT_EQ(r.status, StepStatus::kOk);
  EXPECT_NEAR(r.p.x, 0.1, 1e-15);
  EXPECT_NEAR(r.p.y, 0.2, 1e-15);
  EXPECT_DOUBLE_EQ(r.t, 0.1);
}

TEST(Rk4Step, FailsWhenStageLeavesDomain) {
  const UniformField f({1, 0, 0}, AABB{{0, -1, -1}, {1, 1, 1}});
  const StepResult r = rk4_step(f, {0.95, 0, 0}, 0.0, 0.2);
  EXPECT_EQ(r.status, StepStatus::kSampleFailed);
}

TEST(Rk4Step, FourthOrderConvergenceOnRotor) {
  // One full revolution of the circular field; halving h should shrink
  // the endpoint error ~16x.
  const RotorField f;
  auto endpoint_error = [&](int steps) {
    Vec3 p{1, 0, 0};
    double t = 0.0;
    const double h = kTwoPi / steps;
    for (int i = 0; i < steps; ++i) {
      const StepResult r = rk4_step(f, p, t, h);
      EXPECT_EQ(r.status, StepStatus::kOk);
      p = r.p;
      t = r.t;
    }
    return distance(p, {1, 0, 0});
  };
  const double e1 = endpoint_error(64);
  const double e2 = endpoint_error(128);
  EXPECT_GT(e1 / e2, 12.0);
  EXPECT_LT(e1 / e2, 20.0);
}

TEST(Dopri5Step, AcceptsAndSuggestsNextStep) {
  const RotorField f;
  IntegratorParams prm;
  const StepResult r = dopri5_step(f, {1, 0, 0}, 0.0, 0.01, prm);
  ASSERT_EQ(r.status, StepStatus::kOk);
  EXPECT_GT(r.h_used, 0.0);
  EXPECT_GT(r.h_next, 0.0);
  EXPECT_LE(r.h_next, prm.h_max);
  EXPECT_GT(r.n_evals, 0);
}

TEST(Dopri5Step, RespectsTolerance) {
  // Integrate a full circle adaptively; the endpoint error should be
  // commensurate with the tolerance (within a couple orders).
  const RotorField f;
  IntegratorParams prm;
  prm.tol = 1e-8;
  Vec3 p{1, 0, 0};
  double t = 0.0, h = prm.h_init;
  while (t < kTwoPi) {
    const double cap = std::min(h, kTwoPi - t);
    const StepResult r = dopri5_step(f, p, t, cap, prm);
    ASSERT_EQ(r.status, StepStatus::kOk);
    p = r.p;
    t = r.t;
    h = r.h_next;
  }
  EXPECT_LT(distance(p, {1, 0, 0}), 1e-5);
}

TEST(Dopri5Step, TighterToleranceGivesSmallerError) {
  const ABCField f;
  auto run = [&](double tol) {
    IntegratorParams prm;
    prm.tol = tol;
    Vec3 p{3.0, 3.0, 3.0};
    double t = 0.0, h = prm.h_init;
    for (int i = 0; i < 200; ++i) {
      const StepResult r = dopri5_step(f, p, t, h, prm);
      if (r.status != StepStatus::kOk) break;
      p = r.p;
      t = r.t;
      h = r.h_next;
    }
    return std::pair{p, t};
  };
  // Compare both tolerances against a very tight reference at matching
  // integration times is involved; instead check the loose run stays
  // close to the tight run early on (chaos grows differences later).
  const auto [p_tight, t_tight] = run(1e-10);
  const auto [p_loose, t_loose] = run(1e-4);
  (void)t_tight;
  (void)t_loose;
  // Both runs start identically; the trajectories are the same curve, so
  // positions should be in the same region of the box.
  EXPECT_LT(distance(p_tight, p_loose), 3.0);
}

TEST(Dopri5Step, ShrinksIntoToleranceNearSharpGradients) {
  const RotorField f;
  IntegratorParams prm;
  prm.tol = 1e-12;
  prm.h_max = 1.0;
  // A huge trial step must be rejected down to something tolerable.
  const StepResult r = dopri5_step(f, {1, 0, 0}, 0.0, 1.0, prm);
  ASSERT_EQ(r.status, StepStatus::kOk);
  EXPECT_LT(r.h_used, 0.5);
}

TEST(Dopri5Step, SampleFailureReportedAtBoundary) {
  const UniformField f({1, 0, 0}, AABB{{0, -1, -1}, {1, 1, 1}});
  IntegratorParams prm;
  prm.h_min = 1e-9;
  // Start exactly on the high-x face moving outward: every stage but the
  // first leaves the domain at any h.
  const StepResult r = dopri5_step(f, {1.0, 0, 0}, 0.0, 0.1, prm);
  EXPECT_EQ(r.status, StepStatus::kSampleFailed);
}

TEST(Dopri5Step, HonoursHmaxAndHmin) {
  const UniformField f({1, 0, 0});
  IntegratorParams prm;
  prm.h_max = 0.05;
  prm.h_min = 1e-6;
  const StepResult r = dopri5_step(f, {0, 0, 0}, 0.0, 10.0, prm);
  ASSERT_EQ(r.status, StepStatus::kOk);
  EXPECT_LE(r.h_used, prm.h_max * (1 + 1e-12));
  EXPECT_LE(r.h_next, prm.h_max * (1 + 1e-12));
  EXPECT_GE(r.h_next, prm.h_min);
}

// Fifth-order convergence of the DoPri5 solution on the rotor: fix the
// step size (tolerance loose enough to always accept) and halve it.
class Dopri5Order : public ::testing::TestWithParam<int> {};

TEST_P(Dopri5Order, EndpointErrorDropsFast) {
  const RotorField f;
  IntegratorParams prm;
  prm.tol = 1e30;  // force acceptance: pure fixed-step behaviour
  const int steps = GetParam();
  auto err = [&](int n) {
    Vec3 p{1, 0, 0};
    double t = 0.0;
    const double h = kTwoPi / n;
    IntegratorParams local = prm;
    local.h_max = h;
    for (int i = 0; i < n; ++i) {
      const StepResult r = dopri5_step(f, p, t, h, local);
      EXPECT_EQ(r.status, StepStatus::kOk);
      p = r.p;
      t = r.t;
    }
    return distance(p, {1, 0, 0});
  };
  const double e1 = err(steps);
  const double e2 = err(2 * steps);
  // 5th order: ratio ~32.  Accept anything clearly super-4th-order.
  EXPECT_GT(e1 / e2, 24.0) << "steps=" << steps;
}

INSTANTIATE_TEST_SUITE_P(Resolutions, Dopri5Order,
                         ::testing::Values(32, 64, 128));

}  // namespace
}  // namespace sf
