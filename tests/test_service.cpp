// Streamline-as-a-service tests (src/service, DESIGN.md §12).
//
// The load-bearing property is the equivalence gate: a query's result
// through the service — alone or multiplexed with other queries, cold or
// warm-cached — is bit-identical to a standalone Driver run of the same
// seeds.  Around it: admission control, queued and mid-flight
// cancellation, rank crashes with queries in flight, deterministic
// Poisson arrivals, per-query metrics accumulation, and the checker's
// query-completion invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <utility>
#include <variant>
#include <vector>

#include "check/invariants.hpp"
#include "io/checkpoint_io.hpp"
#include "service/service.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

void expect_same_particles(const std::vector<Particle>& a,
                           const std::vector<Particle>& b,
                           const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " i=" << i;
    EXPECT_EQ(a[i].status, b[i].status) << label << " i=" << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.x, b[i].pos.x) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.y, b[i].pos.y) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.z, b[i].pos.z) << label << " i=" << i;
    EXPECT_EQ(a[i].time, b[i].time) << label << " i=" << i;
  }
}

ServiceConfig service_config(Algorithm algo, int ranks) {
  ServiceConfig sc;
  sc.base = test_config(algo, ranks);
  sc.base.limits.max_steps = 600;
  sc.base.limits.max_time = 10.0;
  return sc;
}

std::vector<Vec3> seeds_for(const sf::testing::TestWorld& w, int n,
                            std::uint64_t seed) {
  Rng rng(seed);
  auto seeds = random_seeds(w.dataset->bounds(), n, rng);
  return seeds;
}

std::uint64_t total_steps(const std::vector<Particle>& ps) {
  std::uint64_t s = 0;
  for (const Particle& p : ps) s += p.steps;
  return s;
}

// --- Equivalence gate -------------------------------------------------------

class ServiceEquivalence : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ServiceEquivalence, SingleQueryMatchesStandaloneSim) {
  const Algorithm algo = GetParam();
  auto w = sf::testing::abc_world(2);
  auto seeds = seeds_for(w, 25, 123);
  seeds.push_back({-5, 0, 0});  // out-of-domain seed joins the result too

  const ServiceConfig sc = service_config(algo, 4);
  const RunMetrics solo =
      run_experiment(sc.base, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(solo.failed_oom);

  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId q = svc.submit(seeds);
  svc.run_until_idle();

  const QueryRecord& rec = svc.record(q);
  EXPECT_EQ(rec.state, QueryState::kDone);
  EXPECT_GE(rec.done_time, 0.0);
  expect_same_particles(solo.particles, rec.particles, "service-vs-solo");
  EXPECT_EQ(total_steps(solo.particles), total_steps(rec.particles));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ServiceEquivalence,
                         ::testing::Values(Algorithm::kStaticAllocation,
                                           Algorithm::kLoadOnDemand,
                                           Algorithm::kHybridMasterSlave));

TEST(Service, MultiQueryResultsMatchSoloRuns) {
  // Three queries multiplexed into one epoch: each query's demuxed result
  // must be bit-identical to running its seeds alone, because
  // advance_batch treats every particle independently.
  auto w = sf::testing::rotor_world(3);
  const std::vector<std::vector<Vec3>> sets = {
      seeds_for(w, 12, 7), seeds_for(w, 9, 8), seeds_for(w, 15, 9)};

  ServiceConfig sc = service_config(Algorithm::kLoadOnDemand, 4);
  sc.max_queries_per_epoch = 3;
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  std::vector<QueryId> ids;
  for (const auto& s : sets) ids.push_back(svc.submit(s));
  svc.run_until_idle();
  EXPECT_EQ(svc.report().epochs, 1u);

  for (std::size_t i = 0; i < sets.size(); ++i) {
    const RunMetrics solo =
        run_experiment(sc.base, w.decomp(), *w.source, sets[i]);
    const QueryRecord& rec = svc.record(ids[i]);
    EXPECT_EQ(rec.state, QueryState::kDone);
    expect_same_particles(solo.particles, rec.particles, "per-query");
  }
}

TEST(Service, SharedCacheWarmsAcrossQueriesWithoutChangingResults) {
  // The same query twice: with cache sharing the second epoch adopts the
  // first epoch's resident blocks (fewer loads, adoptions counted); the
  // trajectories are unchanged either way.
  auto w = sf::testing::abc_world(3);
  const auto seeds = seeds_for(w, 20, 41);

  auto run_pair = [&](bool share) {
    ServiceConfig sc = service_config(Algorithm::kLoadOnDemand, 4);
    sc.max_queries_per_epoch = 1;  // force two epochs
    sc.share_cache = share;
    StreamlineService svc(sc, &w.decomp(), w.source.get());
    const QueryId a = svc.submit(seeds);
    const QueryId b = svc.submit(seeds);
    svc.run_until_idle();
    EXPECT_EQ(svc.record(a).state, QueryState::kDone);
    EXPECT_EQ(svc.record(b).state, QueryState::kDone);
    expect_same_particles(svc.record(a).particles, svc.record(b).particles,
                          share ? "shared-a-vs-b" : "cold-a-vs-b");
    return std::pair{svc.report(), svc.record(b).particles};
  };

  const auto [shared, shared_particles] = run_pair(true);
  const auto [cold, cold_particles] = run_pair(false);

  expect_same_particles(shared_particles, cold_particles, "shared-vs-cold");
  EXPECT_GT(shared.blocks_adopted, 0u);
  EXPECT_EQ(cold.blocks_adopted, 0u);
  // Full overlap: the warm epoch re-reads strictly less.
  EXPECT_LT(shared.blocks_loaded, cold.blocks_loaded);
  EXPECT_GT(shared.cache_hit_rate, cold.cache_hit_rate);
}

// --- Cancellation -----------------------------------------------------------

TEST(Service, CancelWhileQueued) {
  auto w = sf::testing::rotor_world(2);
  ServiceConfig sc = service_config(Algorithm::kStaticAllocation, 3);
  sc.max_queries_per_epoch = 1;
  StreamlineService svc(sc, &w.decomp(), w.source.get());

  const QueryId keep = svc.submit(seeds_for(w, 10, 3));
  const QueryId gone = svc.submit(seeds_for(w, 10, 4));
  EXPECT_TRUE(svc.cancel(gone));
  EXPECT_FALSE(svc.cancel(gone + 100));  // unknown id
  svc.run_until_idle();

  EXPECT_EQ(svc.record(keep).state, QueryState::kDone);
  const QueryRecord& rec = svc.record(gone);
  EXPECT_EQ(rec.state, QueryState::kCancelled);
  EXPECT_TRUE(rec.particles.empty());
  EXPECT_GE(rec.cancel_time, 0.0);
  EXPECT_FALSE(svc.cancel(gone));  // already cancelled
}

TEST(Service, CancelMidFlightDrainsParticlesAndLeavesOthersBitIdentical) {
  auto w = sf::testing::abc_world(3);
  const auto keep_seeds = seeds_for(w, 15, 21);
  const auto cancel_seeds = seeds_for(w, 15, 22);

  ServiceConfig sc = service_config(Algorithm::kLoadOnDemand, 4);
  sc.max_queries_per_epoch = 2;
  const RunMetrics solo_keep =
      run_experiment(sc.base, w.decomp(), *w.source, keep_seeds);
  const RunMetrics solo_cancel =
      run_experiment(sc.base, w.decomp(), *w.source, cancel_seeds);

  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId keep = svc.submit(keep_seeds);
  const QueryId gone = svc.submit(cancel_seeds);
  // Mid-flight: well after the epoch starts, well before the cancelled
  // query could finish on its own (the epoch shares ranks two ways).
  EXPECT_TRUE(svc.cancel_at(gone, 0.3 * solo_cancel.wall_clock));
  svc.run_until_idle();

  // The surviving query is untouched by its neighbor's cancellation.
  expect_same_particles(solo_keep.particles, svc.record(keep).particles,
                        "keep-query");

  // The cancelled query drained: every particle is terminal and
  // accounted for, at least one actually died as kCancelled, and the
  // query did strictly less work than its solo run.
  const QueryRecord& rec = svc.record(gone);
  EXPECT_EQ(rec.state, QueryState::kCancelled);
  ASSERT_EQ(rec.particles.size(), cancel_seeds.size());
  std::size_t cancelled = 0;
  for (const Particle& p : rec.particles) {
    EXPECT_TRUE(is_terminal(p.status));
    if (p.status == ParticleStatus::kCancelled) ++cancelled;
  }
  EXPECT_GT(cancelled, 0u);
  EXPECT_LT(total_steps(rec.particles), total_steps(solo_cancel.particles));
  EXPECT_GE(rec.done_time, 0.0);
}

// --- Faults -----------------------------------------------------------------

TEST(Service, RankCrashWithThreeQueriesInFlight) {
  auto w = sf::testing::rotor_world(3);
  const std::vector<std::vector<Vec3>> sets = {
      seeds_for(w, 10, 61), seeds_for(w, 10, 62), seeds_for(w, 10, 63)};

  ServiceConfig sc = service_config(Algorithm::kLoadOnDemand, 6);
  sc.max_queries_per_epoch = 3;
  // Calibrate the crash instant off a clean multiplexed epoch.
  StreamlineService clean(sc, &w.decomp(), w.source.get());
  for (const auto& s : sets) clean.submit(s);
  clean.run_until_idle();
  const double wall = clean.cumulative().wall_clock;
  ASSERT_GT(wall, 0.0);

  sc.base.runtime.fault.crashes = {{0.4 * wall, 2}};
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  std::vector<QueryId> ids;
  for (const auto& s : sets) ids.push_back(svc.submit(s));
  svc.run_until_idle();

  EXPECT_EQ(svc.cumulative().fault.crashes_injected, 1u);
  EXPECT_EQ(svc.cumulative().fault.crashes_survived, 1u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const QueryRecord& rec = svc.record(ids[i]);
    EXPECT_EQ(rec.state, QueryState::kDone) << "query " << ids[i];
    // Conservation per query across the crash: every seed's streamline
    // reaches a terminal state exactly once.
    EXPECT_EQ(rec.particles.size(), sets[i].size()) << "query " << ids[i];
    for (const Particle& p : rec.particles) {
      EXPECT_TRUE(is_terminal(p.status));
    }
  }
}

// --- Admission control and arrivals -----------------------------------------

TEST(Service, AdmissionRejectsBeyondQueueDepth) {
  auto w = sf::testing::rotor_world(2);
  ServiceConfig sc = service_config(Algorithm::kStaticAllocation, 2);
  sc.max_queue_depth = 2;
  sc.max_queries_per_epoch = 1;
  StreamlineService svc(sc, &w.decomp(), w.source.get());

  std::vector<QueryId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(svc.submit(seeds_for(w, 5, i)));
  svc.run_until_idle();

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.submitted, 4u);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(r.rejected, 2u);
  EXPECT_EQ(svc.record(ids[0]).state, QueryState::kDone);
  EXPECT_EQ(svc.record(ids[1]).state, QueryState::kDone);
  EXPECT_EQ(svc.record(ids[2]).state, QueryState::kRejected);
  EXPECT_EQ(svc.record(ids[3]).state, QueryState::kRejected);
}

TEST(Service, MalformedSubmissionsRejectedUpFront) {
  auto w = sf::testing::rotor_world(2);
  ServiceConfig sc = service_config(Algorithm::kStaticAllocation, 2);
  sc.max_seeds_per_query = 4;
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId empty = svc.submit({});
  const QueryId oversized = svc.submit(seeds_for(w, 5, 1));
  EXPECT_EQ(svc.record(empty).state, QueryState::kRejected);
  EXPECT_EQ(svc.record(oversized).state, QueryState::kRejected);
  svc.run_until_idle();  // nothing to run
  EXPECT_EQ(svc.report().epochs, 0u);
}

// --- Deadlines (DESIGN.md §16) ----------------------------------------------

TEST(Service, QueryWithGenerousDeadlineCompletesWithinIt) {
  auto w = sf::testing::rotor_world(2);
  const ServiceConfig sc = service_config(Algorithm::kStaticAllocation, 3);
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId q = svc.submit(seeds_for(w, 10, 7), /*deadline=*/100.0);
  svc.run_until_idle();

  const QueryRecord& rec = svc.record(q);
  EXPECT_EQ(rec.state, QueryState::kDone);
  EXPECT_EQ(rec.deadline, 100.0);
  EXPECT_LE(rec.latency(), rec.deadline);
  EXPECT_EQ(svc.report().deadline_cancelled, 0u);
  EXPECT_EQ(svc.report().rejected_deadline, 0u);
}

TEST(Service, DeadlineExpiryCancelsMidFlightAtTheExactInstant) {
  auto w = sf::testing::abc_world(3);
  const auto seeds = seeds_for(w, 15, 31);
  const ServiceConfig sc = service_config(Algorithm::kLoadOnDemand, 4);
  const RunMetrics solo = run_experiment(sc.base, w.decomp(), *w.source,
                                         seeds);
  ASSERT_GT(solo.wall_clock, 0.0);

  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const double budget = 0.3 * solo.wall_clock;
  const QueryId q = svc.submit(seeds, budget);
  svc.run_until_idle();

  const QueryRecord& rec = svc.record(q);
  EXPECT_EQ(rec.state, QueryState::kCancelled);
  EXPECT_TRUE(rec.deadline_expired);
  EXPECT_EQ(rec.cancel_time, rec.submit_time + budget);
  // The query drained: every particle reached a terminal state, some as
  // kCancelled, and strictly less work was done than a full solo run.
  ASSERT_EQ(rec.particles.size(), seeds.size());
  std::size_t cancelled = 0;
  for (const Particle& p : rec.particles) {
    EXPECT_TRUE(is_terminal(p.status));
    if (p.status == ParticleStatus::kCancelled) ++cancelled;
  }
  EXPECT_GT(cancelled, 0u);
  EXPECT_LT(total_steps(rec.particles), total_steps(solo.particles));

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.deadline_cancelled, 1u);
  EXPECT_EQ(r.cancelled, 1u);
  EXPECT_EQ(r.rejected, 0u);
}

TEST(Service, ExpiredDeadlineIsShedAtAdmissionNotRun) {
  auto w = sf::testing::rotor_world(2);
  ServiceConfig sc = service_config(Algorithm::kStaticAllocation, 3);
  sc.max_queries_per_epoch = 1;
  const RunMetrics solo = run_experiment(sc.base, w.decomp(), *w.source,
                                         seeds_for(w, 10, 41));
  ASSERT_GT(solo.wall_clock, 0.0);

  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId first = svc.submit(seeds_for(w, 10, 41));
  // Queued behind `first`; its budget is gone before epoch 2 can admit
  // it, so deadline-aware admission sheds it instead of running it.
  const QueryId starved =
      svc.submit(seeds_for(w, 10, 42), 0.5 * solo.wall_clock);
  svc.run_until_idle();

  EXPECT_EQ(svc.record(first).state, QueryState::kDone);
  const QueryRecord& rec = svc.record(starved);
  EXPECT_EQ(rec.state, QueryState::kRejected);
  EXPECT_EQ(rec.reject_reason, RejectReason::kDeadline);
  EXPECT_TRUE(rec.particles.empty());

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.rejected_deadline, 1u);
  EXPECT_EQ(r.rejected, 1u);
  EXPECT_EQ(r.epochs, 1u);  // the shed query never cost an epoch
}

TEST(Service, DefaultDeadlineAppliesToUntaggedSubmissions) {
  auto w = sf::testing::abc_world(3);
  const auto seeds = seeds_for(w, 15, 51);
  ServiceConfig sc = service_config(Algorithm::kLoadOnDemand, 4);
  const RunMetrics solo = run_experiment(sc.base, w.decomp(), *w.source,
                                         seeds);

  sc.default_deadline = 0.3 * solo.wall_clock;
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId untagged = svc.submit(seeds);            // inherits default
  const QueryId tagged = svc.submit(seeds_for(w, 5, 52), 90.0);  // overrides
  svc.run_until_idle();

  EXPECT_EQ(svc.record(untagged).deadline, sc.default_deadline);
  EXPECT_EQ(svc.record(untagged).state, QueryState::kCancelled);
  EXPECT_TRUE(svc.record(untagged).deadline_expired);
  EXPECT_EQ(svc.record(tagged).deadline, 90.0);
  EXPECT_EQ(svc.record(tagged).state, QueryState::kDone);
}

TEST(Service, RejectionSplitsSumToRejected) {
  auto w = sf::testing::rotor_world(2);
  ServiceConfig sc = service_config(Algorithm::kStaticAllocation, 2);
  sc.max_queries_per_epoch = 1;
  sc.max_queue_depth = 2;
  const RunMetrics solo = run_experiment(sc.base, w.decomp(), *w.source,
                                         seeds_for(w, 10, 61));
  ASSERT_GT(solo.wall_clock, 0.0);

  StreamlineService svc(sc, &w.decomp(), w.source.get());
  svc.submit(seeds_for(w, 10, 61));                           // runs
  svc.submit(seeds_for(w, 10, 62), 0.5 * solo.wall_clock);    // sheds
  svc.submit(seeds_for(w, 10, 63));                           // queue full
  svc.submit({});                                             // malformed
  svc.run_until_idle();

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.submitted, 4u);
  EXPECT_EQ(r.completed, 1u);
  EXPECT_EQ(r.rejected_depth, 1u);
  EXPECT_EQ(r.rejected_deadline, 1u);
  EXPECT_EQ(r.rejected_malformed, 1u);
  EXPECT_EQ(r.rejected,
            r.rejected_depth + r.rejected_deadline + r.rejected_malformed);
}

TEST(Service, PoissonArrivalsAreSeededAndReplayable) {
  PoissonArrivals a(2.0, 0xfeed);
  PoissonArrivals b(2.0, 0xfeed);
  PoissonArrivals c(2.0, 0xbeef);
  double prev = 0.0;
  bool any_differs = false;
  for (int i = 0; i < 64; ++i) {
    const double ta = a.next();
    EXPECT_EQ(ta, b.next()) << "same seed must replay bit-identically";
    EXPECT_GT(ta, prev) << "arrivals must be strictly increasing";
    prev = ta;
    if (ta != c.next()) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds must differ";
}

TEST(Service, PoissonScheduleDrivesQueueWaits) {
  // Arrivals spaced out in service time: the clock jumps idle gaps, later
  // queries wait only when they land during a busy epoch.
  auto w = sf::testing::rotor_world(2);
  ServiceConfig sc = service_config(Algorithm::kStaticAllocation, 3);
  sc.max_queries_per_epoch = 1;
  StreamlineService svc(sc, &w.decomp(), w.source.get());

  PoissonArrivals arrivals(100.0, 0x5eed);
  std::vector<QueryId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(svc.submit_at(seeds_for(w, 8, 200 + i), arrivals.next()));
  }
  svc.run_until_idle();

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.completed, 5u);
  EXPECT_GE(r.p99_queue_wait, r.p50_queue_wait);
  EXPECT_GE(r.p99_latency, r.p50_latency);
  EXPECT_GT(r.p50_latency, 0.0);
  for (const QueryId id : ids) {
    const QueryRecord& rec = svc.record(id);
    EXPECT_GE(rec.admit_time, rec.submit_time);
    EXPECT_GT(rec.done_time, rec.admit_time);
  }
}

TEST(Service, JournalRecordsControlPlaneTraffic) {
  auto w = sf::testing::rotor_world(2);
  ServiceConfig sc = service_config(Algorithm::kStaticAllocation, 2);
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  const QueryId done = svc.submit(seeds_for(w, 6, 5));
  const QueryId gone = svc.submit(seeds_for(w, 6, 6));
  svc.cancel(gone);
  svc.run_until_idle();
  (void)done;

  std::size_t submits = 0, cancels = 0, results = 0, dones = 0;
  for (const JournalEntry& e : svc.journal()) {
    EXPECT_GT(e.bytes, 0u);
    if (std::holds_alternative<QuerySubmit>(e.msg.payload)) ++submits;
    if (std::holds_alternative<QueryCancel>(e.msg.payload)) ++cancels;
    if (std::holds_alternative<QueryResult>(e.msg.payload)) ++results;
    if (std::holds_alternative<QueryDone>(e.msg.payload)) ++dones;
  }
  EXPECT_EQ(submits, 2u);
  EXPECT_EQ(cancels, 1u);
  EXPECT_EQ(results, 1u);
  EXPECT_EQ(dones, 1u);
}

// --- Metrics ----------------------------------------------------------------

TEST(Service, RunMetricsAccumulateAndReset) {
  RunMetrics total;
  RunMetrics epoch;
  epoch.wall_clock = 2.0;
  epoch.num_ranks = 4;
  epoch.ranks.resize(4);
  epoch.ranks[1].steps = 100;
  epoch.ranks[1].blocks_loaded = 7;
  epoch.ranks[1].blocks_adopted = 3;
  epoch.ranks[2].peak_particle_bytes = 512;
  epoch.fault.crashes_injected = 1;
  epoch.query_completions.push_back({4, 1.5, 10});
  Particle p;
  p.id = 3;
  p.status = ParticleStatus::kMaxSteps;
  epoch.particles.push_back(p);

  total.accumulate(epoch);
  total.accumulate(epoch);

  EXPECT_EQ(total.wall_clock, 4.0);
  EXPECT_EQ(total.num_ranks, 4);
  EXPECT_EQ(total.total_steps(), 200u);
  EXPECT_EQ(total.total_blocks_loaded(), 14u);
  EXPECT_EQ(total.ranks[1].blocks_adopted, 6u);
  EXPECT_EQ(total.ranks[2].peak_particle_bytes, 512u);  // max, not sum
  EXPECT_EQ(total.fault.crashes_injected, 2u);
  EXPECT_EQ(total.particles.size(), 2u);
  EXPECT_EQ(total.query_completions.size(), 2u);

  total.reset();
  EXPECT_EQ(total.wall_clock, 0.0);
  EXPECT_TRUE(total.ranks.empty());
  EXPECT_TRUE(total.particles.empty());
  EXPECT_TRUE(total.query_completions.empty());
  EXPECT_EQ(total.fault.crashes_injected, 0u);
}

TEST(Service, CumulativeMatchesSumOfEpochsWithoutDoubleCounting) {
  auto w = sf::testing::rotor_world(2);
  const auto s1 = seeds_for(w, 10, 31);
  const auto s2 = seeds_for(w, 10, 32);

  ServiceConfig sc = service_config(Algorithm::kLoadOnDemand, 3);
  sc.max_queries_per_epoch = 1;
  sc.share_cache = false;  // epochs are then independent solo runs
  StreamlineService svc(sc, &w.decomp(), w.source.get());
  svc.submit(s1);
  svc.submit(s2);
  svc.run_until_idle();

  const RunMetrics a = run_experiment(sc.base, w.decomp(), *w.source, s1);
  const RunMetrics b = run_experiment(sc.base, w.decomp(), *w.source, s2);
  EXPECT_EQ(svc.cumulative().total_steps(),
            a.total_steps() + b.total_steps());
  EXPECT_EQ(svc.cumulative().total_blocks_loaded(),
            a.total_blocks_loaded() + b.total_blocks_loaded());
  EXPECT_EQ(svc.cumulative().wall_clock, a.wall_clock + b.wall_clock);
  EXPECT_EQ(svc.cumulative().particles.size(), s1.size() + s2.size());
}

// --- Queue unit behaviour ---------------------------------------------------

TEST(QueryQueue, FifoAdmissionAndCancel) {
  QueryQueue q(3);
  EXPECT_TRUE(q.submit({1, {{0, 0, 0}}, 0.0}));
  EXPECT_TRUE(q.submit({2, {{0, 0, 0}}, 0.0}));
  EXPECT_TRUE(q.submit({3, {{0, 0, 0}}, 0.0}));
  EXPECT_FALSE(q.submit({4, {{0, 0, 0}}, 0.0}));  // full
  EXPECT_TRUE(q.cancel(2));
  EXPECT_FALSE(q.cancel(2));  // already gone
  const auto batch = q.admit(10);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 3u);
  EXPECT_TRUE(q.empty());
}

// --- Checkpoint format ------------------------------------------------------

TEST(Service, CheckpointRoundTripsQueryTag) {
  Checkpoint ck;
  ck.num_ranks = 2;
  Particle p;
  p.id = 9;
  p.query = 12345;
  p.status = ParticleStatus::kMaxTime;
  ck.done.push_back(p);
  p.id = 10;
  p.query = 54321;
  p.status = ParticleStatus::kActive;
  ck.active.push_back(p);
  ck.active_owner.push_back(1);

  const auto path = std::filesystem::temp_directory_path() /
                    "sf_service_query_roundtrip.ckpt";
  write_checkpoint(path, ck);
  const Checkpoint back = read_checkpoint(path);
  std::filesystem::remove(path);
  ASSERT_EQ(back.done.size(), 1u);
  ASSERT_EQ(back.active.size(), 1u);
  EXPECT_EQ(back.done[0].query, 12345u);
  EXPECT_EQ(back.active[0].query, 54321u);
}

// --- Checker query plane ----------------------------------------------------

#if SF_CHECK_INVARIANTS

template <typename Fn>
InvariantDiagnostic expect_violation(Fn&& fn) {
  try {
    fn();
  } catch (const InvariantViolation& v) {
    return v.diag();
  }
  ADD_FAILURE() << "expected an InvariantViolation";
  return {};
}

Particle query_particle(std::uint32_t id, std::uint32_t query) {
  Particle p;
  p.id = id;
  p.pos = {0.1, 0.1, 0.1};
  p.query = query;
  return p;
}

CheckerConfig query_checker_config() {
  CheckerConfig cc;
  cc.num_ranks = 1;
  cc.track_queries = true;
  return cc;
}

TEST(ServiceChecker, QueryDoneSingleFireIsClean) {
  auto ck = make_invariant_checker(query_checker_config());
  ASSERT_NE(ck, nullptr);
  Particle p = query_particle(0, 7);
  ck->on_seeded(0, {p});
  p.status = ParticleStatus::kMaxSteps;
  ck->on_terminated(0, p, true, 1.0);
  ck->on_query_done(7, 1.0);
  ck->on_run_end(true, 2.0);
}

TEST(ServiceChecker, QueryDoneDoubleFire) {
  const InvariantDiagnostic diag = expect_violation([] {
    auto ck = make_invariant_checker(query_checker_config());
    Particle p = query_particle(0, 7);
    ck->on_seeded(0, {p});
    p.status = ParticleStatus::kMaxSteps;
    ck->on_terminated(0, p, true, 1.0);
    ck->on_query_done(7, 1.0);
    ck->on_query_done(7, 2.0);
  });
  EXPECT_EQ(diag.kind, ViolationKind::kQueryDoneDouble);
}

TEST(ServiceChecker, QueryDonePremature) {
  const InvariantDiagnostic diag = expect_violation([] {
    auto ck = make_invariant_checker(query_checker_config());
    Particle a = query_particle(0, 7);
    Particle b = query_particle(1, 7);
    ck->on_seeded(0, {a, b});
    a.status = ParticleStatus::kMaxSteps;
    ck->on_terminated(0, a, true, 1.0);
    ck->on_query_done(7, 1.0);  // b is still running
  });
  EXPECT_EQ(diag.kind, ViolationKind::kQueryDonePremature);
}

TEST(ServiceChecker, QueryDoneMissing) {
  const InvariantDiagnostic diag = expect_violation([] {
    auto ck = make_invariant_checker(query_checker_config());
    Particle p = query_particle(0, 7);
    ck->on_seeded(0, {p});
    p.status = ParticleStatus::kMaxSteps;
    ck->on_terminated(0, p, true, 1.0);
    ck->on_run_end(true, 2.0);  // nobody fired on_query_done
  });
  EXPECT_EQ(diag.kind, ViolationKind::kQueryDoneMissing);
}

#endif  // SF_CHECK_INVARIANTS

}  // namespace
}  // namespace sf
