#include "core/dataset.hpp"

#include <gtest/gtest.h>

#include "core/analytic_fields.hpp"
#include "core/rng.hpp"

namespace sf {
namespace {

DatasetPtr make_dataset(int blocks_per_axis = 2, int nodes = 9,
                        int ghost = 2) {
  auto field = std::make_shared<ABCField>();
  const BlockDecomposition decomp(field->bounds(), blocks_per_axis,
                                  blocks_per_axis, blocks_per_axis);
  return std::make_shared<BlockedDataset>(field, decomp, nodes, ghost);
}

TEST(BlockedDataset, Validation) {
  auto field = std::make_shared<ABCField>();
  const BlockDecomposition d(field->bounds(), 2, 2, 2);
  EXPECT_THROW(BlockedDataset(nullptr, d, 8, 1), std::invalid_argument);
  EXPECT_THROW(BlockedDataset(field, d, 1, 1), std::invalid_argument);
  EXPECT_THROW(BlockedDataset(field, d, 8, -1), std::invalid_argument);
}

TEST(BlockedDataset, BlockGridCoversGhostRegion) {
  auto ds = make_dataset(2, 9, 2);
  const GridPtr g = ds->block(0);
  // 9 core nodes + 2 ghost cells per side.
  EXPECT_EQ(g->nx(), 13);
  const AABB core = ds->decomposition().block_bounds(0);
  EXPECT_TRUE(g->bounds().contains(core.lo));
  EXPECT_TRUE(g->bounds().contains(core.hi));
  EXPECT_GT(core.lo.x - g->bounds().lo.x, 0.0);
}

TEST(BlockedDataset, BlocksAreMemoized) {
  auto ds = make_dataset();
  EXPECT_EQ(ds->block(3).get(), ds->block(3).get());
}

TEST(BlockedDataset, BadBlockIdThrows) {
  auto ds = make_dataset();
  EXPECT_THROW(ds->block(-1), std::out_of_range);
  EXPECT_THROW(ds->block(8), std::out_of_range);
}

TEST(BlockedDataset, SampleMatchesSourceFieldClosely) {
  auto ds = make_dataset(2, 33, 2);
  const VectorField& f = *ds->source_field();
  Rng rng(5);
  const AABB b = ds->bounds();
  for (int i = 0; i < 300; ++i) {
    const Vec3 p{rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y),
                 rng.uniform(b.lo.z, b.hi.z)};
    Vec3 vd, vf;
    ASSERT_TRUE(ds->sample(p, vd));
    ASSERT_TRUE(f.sample(p, vf));
    EXPECT_LT(norm(vd - vf), 0.05) << "at " << p;
  }
}

TEST(BlockedDataset, SamplingIsContinuousAcrossBlockFaces) {
  // Approaching an internal face from both sides must agree to grid
  // accuracy — this is what ghost layers buy.
  auto ds = make_dataset(2, 17, 2);
  const double face = 3.14159265358979323846;  // domain is [0, 2pi]^3
  Vec3 below, above;
  ASSERT_TRUE(ds->sample({face - 1e-9, 2.0, 2.0}, below));
  ASSERT_TRUE(ds->sample({face + 1e-9, 2.0, 2.0}, above));
  EXPECT_LT(norm(below - above), 1e-5);
}

TEST(BlockedDataset, SampleOutsideFails) {
  auto ds = make_dataset();
  Vec3 v;
  EXPECT_FALSE(ds->sample({-1, 0, 0}, v));
}

TEST(BlockedDataset, PayloadBytesMatchGridSize) {
  auto ds = make_dataset(2, 9, 2);
  EXPECT_EQ(ds->block_payload_bytes(), 13u * 13u * 13u * sizeof(Vec3));
  EXPECT_EQ(ds->block_payload_bytes(), ds->block(0)->payload_bytes());
}

TEST(DatasetBlockSource, LoadsAndReportsModelledBytes) {
  auto ds = make_dataset();
  const DatasetBlockSource actual(ds);
  EXPECT_EQ(actual.num_blocks(), 8);
  EXPECT_EQ(actual.block_bytes(0), ds->block_payload_bytes());
  EXPECT_EQ(actual.load(2).get(), ds->block(2).get());

  const DatasetBlockSource modelled(ds, 12u << 20);
  EXPECT_EQ(modelled.block_bytes(0), 12u << 20);
  // Modelled size changes accounting only, never the data.
  EXPECT_EQ(modelled.load(2).get(), ds->block(2).get());
}

}  // namespace
}  // namespace sf
