#include "algorithms/static_alloc.hpp"

#include <gtest/gtest.h>

#include "algorithms/driver.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

TEST(ContiguousOwner, RangesPartitionBlocks) {
  for (const auto& [nb, pr] : {std::pair{512, 64}, std::pair{7, 3},
                               std::pair{8, 8}, std::pair{5, 8},
                               std::pair{100, 1}}) {
    // Every block owned by exactly the rank whose range covers it.
    for (BlockId b = 0; b < nb; ++b) {
      const int owner = contiguous_owner(nb, pr, b);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, pr);
      const auto [first, last] = contiguous_range(nb, pr, owner);
      EXPECT_GE(b, first);
      EXPECT_LT(b, last);
    }
    // Ranges cover [0, nb) without overlap.
    int covered = 0;
    for (int r = 0; r < pr; ++r) {
      const auto [first, last] = contiguous_range(nb, pr, r);
      covered += last - first;
    }
    EXPECT_EQ(covered, nb);
  }
}

TEST(ContiguousOwner, RejectsBadBlock) {
  EXPECT_THROW(contiguous_owner(8, 2, -1), std::out_of_range);
  EXPECT_THROW(contiguous_owner(8, 2, 8), std::out_of_range);
}

TEST(PartitionByBlockOwner, ParticlesLandOnTheirOwners) {
  auto w = sf::testing::rotor_world(2);  // 8 blocks
  std::vector<Particle> particles;
  Rng rng(3);
  const AABB b = w.dataset->bounds();
  for (int i = 0; i < 100; ++i) {
    Particle p;
    p.id = static_cast<std::uint32_t>(i);
    p.pos = {rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y),
             rng.uniform(b.lo.z, b.hi.z)};
    particles.push_back(p);
  }
  const auto parts =
      partition_by_block_owner(w.decomp(), 4, std::move(particles));
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  for (int r = 0; r < 4; ++r) {
    for (const Particle& p : parts[static_cast<std::size_t>(r)]) {
      EXPECT_EQ(contiguous_owner(8, 4, w.decomp().block_of(p.pos)), r);
    }
    total += parts[static_cast<std::size_t>(r)].size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(StaticAllocation, AllParticlesTerminate) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(7);
  const auto seeds = random_seeds(w.dataset->bounds(), 40, rng);
  const auto cfg = test_config(Algorithm::kStaticAllocation, 4);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  ASSERT_EQ(m.particles.size(), seeds.size());
  for (const Particle& p : m.particles) {
    EXPECT_TRUE(is_terminal(p.status));
  }
  EXPECT_GT(m.total_steps(), 0u);
}

TEST(StaticAllocation, EachBlockLoadedAtMostOnceWithAmpleCache) {
  // The algorithm's signature property: ideal I/O, E = 1.
  auto w = sf::testing::abc_world(2);
  Rng rng(9);
  const auto seeds = random_seeds(w.dataset->bounds(), 60, rng);
  auto cfg = test_config(Algorithm::kStaticAllocation, 4);
  cfg.runtime.cache_blocks = 64;  // plenty: no purges possible
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_LE(m.total_blocks_loaded(),
            static_cast<std::uint64_t>(w.decomp().num_blocks()));
  EXPECT_EQ(m.total_blocks_purged(), 0u);
  EXPECT_DOUBLE_EQ(m.block_efficiency(), 1.0);
}

TEST(StaticAllocation, CommunicatesWhenLinesCrossOwnership) {
  // Rotor streamlines orbit through all four quadrants: with 4 ranks the
  // lines must be handed between owners repeatedly.
  auto w = sf::testing::rotor_world(2);
  const std::vector<Vec3> seeds{{1.0, 0.1, 0.1}, {-1.0, -0.1, -0.1}};
  auto cfg = test_config(Algorithm::kStaticAllocation, 4);
  cfg.limits.max_time = 12.0;  // ~2 revolutions
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_GT(m.total_messages(), 8u);
  EXPECT_GT(m.total_comm_time(), 0.0);
}

TEST(StaticAllocation, SingleRankDegeneratesToSerial) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(11);
  const auto seeds = random_seeds(w.dataset->bounds(), 10, rng);
  const auto cfg = test_config(Algorithm::kStaticAllocation, 1);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);
  EXPECT_EQ(m.particles.size(), 10u);
  // No one to talk to.
  EXPECT_EQ(m.total_messages(), 0u);
}

TEST(StaticAllocation, SeedsOutsideDomainAreReported) {
  auto w = sf::testing::rotor_world(2);
  const std::vector<Vec3> seeds{{0.5, 0.5, 0.5}, {99, 99, 99}};
  const auto cfg = test_config(Algorithm::kStaticAllocation, 2);
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_EQ(m.particles.size(), 2u);
  EXPECT_EQ(m.particles[1].status, ParticleStatus::kExitedDomain);
  EXPECT_EQ(m.particles[1].steps, 0u);
}

TEST(StaticAllocation, EmptySeedSetTerminatesCleanly) {
  auto w = sf::testing::rotor_world(2);
  const auto cfg = test_config(Algorithm::kStaticAllocation, 3);
  const RunMetrics m =
      run_experiment(cfg, w.decomp(), *w.source, std::span<const Vec3>{});
  EXPECT_FALSE(m.failed_oom);
  EXPECT_TRUE(m.particles.empty());
}

TEST(StaticAllocation, DenseSeedsOnOneOwnerCanOom) {
  // The Figure 13 failure: a dense cluster lands on one rank whose
  // resident particles blow the memory budget.
  auto w = sf::testing::rotor_world(2);
  Rng rng(5);
  const auto seeds =
      cluster_seeds({1.0, 1.0, 1.0}, 0.05, 400, rng, w.dataset->bounds());
  auto cfg = test_config(Algorithm::kStaticAllocation, 4);
  cfg.runtime.model.particle_memory_bytes = 64 << 10;  // tiny budget
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  EXPECT_TRUE(m.failed_oom);
  bool some_rank_oomed = false;
  for (const auto& r : m.ranks) some_rank_oomed |= r.oom;
  EXPECT_TRUE(some_rank_oomed);
}

}  // namespace
}  // namespace sf
