// Lint fixture (never compiled): an sf::Mutex without a LockRank.  It
// opts out of the runtime acquisition-order check, so a deadlocking
// nesting through it goes unnoticed until it hangs —
// check_lock_order.py's `unranked-mutex` rule.

#include "core/thread_annotations.hpp"

namespace sf {

class Board {
 public:
  void post() {
    MutexLock lock(mu_);
    ++posts_;
  }

 private:
  Mutex mu_;  // BAD: no explicit LockRank
  int posts_ SF_GUARDED_BY(mu_) = 0;
};

}  // namespace sf
