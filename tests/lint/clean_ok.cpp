// Lint fixture (never compiled): the clean counterpart.  Uses the
// deterministic / annotated alternatives for every pattern the bad_*
// fixtures seed, plus one deliberately waived finding per lint to prove
// the per-site waiver syntax suppresses exactly its rule.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>

#include "core/thread_annotations.hpp"

namespace sf {

struct Mail {
  void send(int to, std::uint32_t seq);
};

class CleanBoard {
 public:
  void post(int rank, std::uint32_t seq) SF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    pending_[rank] = seq;
  }

  void flush(Mail& mail) SF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (const auto& [rank, seq] : pending_) {  // ordered map: fine
      mail.send(rank, seq);
    }
    pending_.clear();
  }

 private:
  Mutex mu_{LockRank::kMailbox};
  std::map<int, std::uint32_t> pending_ SF_GUARDED_BY(mu_);
};

// steady_clock durations are allowed: monotonic, used only for
// wall-time *measurement* (metrics), never for decisions.
inline double measure_seconds(const std::chrono::steady_clock::time_point a,
                              const std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Waived sites: each waiver names exactly the rule it suppresses, with
// the justification on the same line (DESIGN.md §13 waiver policy).

// Interop shim for a third-party callback API that hands us a bare
// std::mutex; never used for streamflow state.
// lock-order-lint: ignores raw-mutex
using ExternalMutexRef = std::mutex&;

inline long waived_epoch() {
  // Report-header timestamp only; never feeds computation or ordering.
  return static_cast<long>(time(nullptr));  // determinism-lint: ignores wall-clock
}

// Single-threaded statistics counter: no concurrent access exists, so
// there is no happens-before obligation to document.
// lock-order-lint: ignores raw-atomic
inline void bump(std::atomic<int>& n) { n.fetch_add(1, std::memory_order_relaxed); }

}  // namespace sf
