// Lint fixture (never compiled): pointer values used as identity.  An
// ordered container keyed on addresses iterates in allocation order,
// %p prints ASLR-randomized values, and uintptr_t casts bake addresses
// into data — check_determinism.py's `address-identity` rule.

#include <cstdint>
#include <cstdio>
#include <map>

struct Block {
  int id;
};

struct Owners {
  std::map<const Block*, int> by_block_;  // BAD: pointer-keyed ordering

  void dump(const Block* b) {
    std::printf("block at %p\n", static_cast<const void*>(b));  // BAD
  }

  std::uint64_t key(const Block* b) {
    return reinterpret_cast<std::uintptr_t>(b);  // BAD: address as id
  }
};
