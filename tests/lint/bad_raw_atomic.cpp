// Lint fixture (never compiled): explicit atomic orderings without the
// `// lockfree-lint: spsc` marker-and-rationale discipline — both sites
// trip check_lock_order.py's `raw-atomic` rule.

#include <atomic>

struct Flag {
  std::atomic<bool> ready_{false};

  void publish() {
    // BAD: explicit ordering, no lockfree-lint marker anywhere near.
    ready_.store(true, std::memory_order_release);
  }

  bool poll() const {
    // lockfree-lint: spsc — reads the flag.
    // BAD: the marker above states no happens-before argument.
    return ready_.load(std::memory_order_acquire);
  }

  void fence() {
    // BAD: bare fence, no marker.
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
};
