#!/usr/bin/env python3
"""Self-test for the streamflow lints (CTest label: lint).

Each bad_* fixture seeds exactly the violation class named in its file;
the lint under test must flag it with the expected rule tag and exit
nonzero.  clean_ok.cpp exercises the deterministic/annotated
alternatives plus one waived site per lint, and must pass both lints —
proving the waiver syntax suppresses precisely its named rule.

Run directly or via ctest; exit 0 iff every case behaves.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parents[1]
LINT = ROOT / "tools" / "lint"

# (script, fixture, expected exit code, rule tags that must appear)
CASES = [
    ("check_determinism.py", "bad_unordered_send.cpp", 1,
     ["unordered-iteration"]),
    ("check_determinism.py", "bad_wall_clock.cpp", 1, ["wall-clock"]),
    ("check_determinism.py", "bad_pointer_key.cpp", 1, ["address-identity"]),
    ("check_determinism.py", "bad_unseeded_rng.cpp", 1, ["unseeded-rng"]),
    ("check_determinism.py", "clean_ok.cpp", 0, []),
    ("check_determinism.py", "clean_simd_kernel.cpp", 0, []),
    ("check_lock_order.py", "bad_lock_cycle.cpp", 1, ["order", "cycle"]),
    ("check_lock_order.py", "bad_missing_guard.cpp", 1, ["missing-guard"]),
    ("check_lock_order.py", "bad_raw_mutex.cpp", 1, ["raw-mutex"]),
    ("check_lock_order.py", "bad_raw_atomic.cpp", 1, ["raw-atomic"]),
    ("check_lock_order.py", "bad_unranked_mutex.cpp", 1, ["unranked-mutex"]),
    ("check_lock_order.py", "clean_ok.cpp", 0, []),
    ("check_lock_order.py", "clean_simd_kernel.cpp", 0, []),
]


def main() -> int:
    failures = []
    for script, fixture, want_rc, want_rules in CASES:
        proc = subprocess.run(
            [sys.executable, str(LINT / script), "--root", str(ROOT),
             "--files", str(HERE / fixture)],
            capture_output=True, text=True, check=False)
        out = proc.stdout + proc.stderr
        problems = []
        if proc.returncode != want_rc:
            problems.append(f"exit {proc.returncode}, wanted {want_rc}")
        for rule in want_rules:
            if f"(rule: {rule})" not in out:
                problems.append(f"missing expected rule tag '{rule}'")
        name = f"{script} {fixture}"
        if problems:
            failures.append(name)
            print(f"FAIL {name}: {'; '.join(problems)}")
            print("  --- lint output ---")
            for line in out.splitlines():
                print(f"  {line}")
        else:
            print(f"ok   {name}")

    # The lints must also pass on the real tree: a fixture pattern
    # accidentally introduced into src/ should fail CI via the direct
    # lint tests, and this guard keeps the self-test honest about it.
    for script in ("check_determinism.py", "check_lock_order.py"):
        proc = subprocess.run(
            [sys.executable, str(LINT / script), "--root", str(ROOT)],
            capture_output=True, text=True, check=False)
        name = f"{script} (tree)"
        if proc.returncode != 0:
            failures.append(name)
            print(f"FAIL {name}:")
            for line in (proc.stdout + proc.stderr).splitlines():
                print(f"  {line}")
        else:
            print(f"ok   {name}")

    print(f"test_lints: {len(CASES) + 2} cases, {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
