// Lint fixture (never compiled): nondeterministic randomness.  A
// default-constructed engine or random_device makes every run unique —
// check_determinism.py's `unseeded-rng` rule.

#include <cstdlib>
#include <random>

int roll() {
  std::random_device rd;   // BAD: nondeterministic
  std::mt19937 gen(rd());  // BAD: std engine, entropy-seeded
  return static_cast<int>(gen() % 6u) + std::rand() % 6;  // BAD: rand
}
