// Lint fixture (never compiled): an sf::Mutex that no annotation refers
// to.  The lock exists but the analysis has no idea what it protects, so
// unguarded access to `count_` compiles silently — check_lock_order.py's
// `missing-guard` rule.

#include "core/thread_annotations.hpp"

namespace sf {

class Counter {
 public:
  void bump() {
    MutexLock lock(mu_);
    ++count_;
  }

 private:
  Mutex mu_{LockRank::kLoader};  // BAD: nothing is SF_GUARDED_BY(mu_)
  int count_ = 0;
};

}  // namespace sf
