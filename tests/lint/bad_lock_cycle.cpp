// Lint fixture (never compiled): two mutexes acquired in both orders.
// Thread 1 runs lock_ab() while thread 2 runs lock_ba() -> deadlock.
// check_lock_order.py must report both the rank inversion (`order`) and
// the acquisition cycle (`cycle`).

#include "core/thread_annotations.hpp"

namespace sf {

class TwoBoards {
 public:
  void lock_ab() SF_REQUIRES(a_) {
    MutexLock lock(b_);  // a (20) then b (40): rank-legal edge a -> b
    ++guarded_b_;
  }

  void lock_ba() SF_REQUIRES(b_) {
    MutexLock lock(a_);  // BAD: b (40) then a (20) — inversion + cycle
    ++guarded_a_;
  }

 private:
  Mutex a_{LockRank::kQueryBoard};
  Mutex b_{LockRank::kMailbox};
  int guarded_a_ SF_GUARDED_BY(a_) = 0;
  int guarded_b_ SF_GUARDED_BY(b_) = 0;
};

}  // namespace sf
