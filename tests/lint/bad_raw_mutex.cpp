// Lint fixture (never compiled): raw std::mutex.  Invisible to both the
// thread-safety analysis and the Debug rank checker — check_lock_order.py's
// `raw-mutex` rule.

#include <mutex>

struct Tally {
  std::mutex mu_;  // BAD: raw mutex
  int count_ = 0;

  void bump() {
    std::lock_guard<std::mutex> lock(mu_);  // BAD: raw scoped lock
    ++count_;
  }
};
