// Lint fixture (never compiled): the clean idioms of the AVX2 kernel TU
// (src/core/integrator_simd.cpp) and the lock-free data plane it feeds
// (src/runtime/spsc_ring.hpp).  Lane-minor scratch arrays, fixed-order
// lane loops, and marked atomics must pass BOTH lints: the determinism
// lint (no unordered iteration, no wall-clock decisions, no entropy)
// and the lock-order lint's raw-atomic marker discipline.

#include <atomic>
#include <cstddef>

namespace sf {

constexpr int kLanes = 4;

// Lane-minor stage registers, exactly the SIMD TU's layout: iteration
// is always the fixed lane order 0..3, never over an unordered set.
struct LaneBlock {
  double y[3][kLanes];
  double k[7][3][kLanes];
  bool active[kLanes];
};

inline void accumulate_stage(LaneBlock& b, int stage, double h) {
  for (int axis = 0; axis < 3; ++axis) {
    for (int lane = 0; lane < kLanes; ++lane) {  // fixed lane order
      if (!b.active[lane]) continue;
      b.k[stage][axis][lane] = b.y[axis][lane] * h;
    }
  }
}

// The kernel's completion flag, published the way the mailbox plane
// publishes ring indices.
class RoundFlag {
 public:
  void publish() {
    // lockfree-lint: spsc — release store pairs with the acquire load
    // in consumed(): the lane writes above happen-before any reader
    // that observes done_ == true.
    done_.store(true, std::memory_order_release);
  }

  bool consumed() const {
    // lockfree-lint: spsc — acquire load, the pairing half of
    // publish(): observing true happens-after every lane write.
    return done_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> done_{false};
};

}  // namespace sf
