// Lint fixture (never compiled): iterating an unordered_map straight
// into message emission.  Hash order is unspecified, so the receiver
// sees a different message sequence per run — exactly the class of bug
// check_determinism.py's `unordered-iteration` rule exists to catch.

#include <cstdint>
#include <unordered_map>

struct Mailbox {
  void send(int to, std::uint32_t seq);
};

struct Router {
  std::unordered_map<int, std::uint32_t> pending_;
  Mailbox* mail_ = nullptr;

  void flush() {
    for (const auto& [rank, seq] : pending_) {  // BAD: hash order
      mail_->send(rank, seq);
    }
  }
};
