// Lint fixture (never compiled): wall-clock reads.  Run timestamps
// differ per execution, so anything derived from them breaks replay —
// check_determinism.py's `wall-clock` rule.

#include <chrono>
#include <ctime>

double stamp_now() {
  const auto wall = std::chrono::system_clock::now();  // BAD: wall clock
  return std::chrono::duration<double>(wall.time_since_epoch()).count();
}

long stamp_legacy() {
  return static_cast<long>(time(nullptr));  // BAD: wall clock
}
