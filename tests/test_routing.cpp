#include "algorithms/routing.hpp"

#include <gtest/gtest.h>

#include "core/analytic_fields.hpp"

namespace sf {
namespace {

Particle particle(std::uint32_t id, std::uint32_t geometry = 1) {
  Particle p;
  p.id = id;
  p.geometry_points = geometry;
  return p;
}

TEST(ParticlePool, AddTakeCounts) {
  ParticlePool pool;
  EXPECT_TRUE(pool.empty());
  pool.add(3, particle(0));
  pool.add(3, particle(1));
  pool.add(7, particle(2));
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.count_in(3), 2u);
  EXPECT_EQ(pool.count_in(7), 1u);
  EXPECT_EQ(pool.count_in(99), 0u);

  const auto p = pool.take_from(3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->id, 0u);  // FIFO within a block
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_FALSE(pool.take_from(42).has_value());
}

TEST(ParticlePool, TakeDrainsBlockEntry) {
  ParticlePool pool;
  pool.add(5, particle(0));
  ASSERT_TRUE(pool.take_from(5).has_value());
  EXPECT_FALSE(pool.take_from(5).has_value());
  EXPECT_TRUE(pool.empty());
  EXPECT_TRUE(pool.census().empty());
}

TEST(ParticlePool, DensestBlockBreaksTiesLow) {
  ParticlePool pool;
  EXPECT_EQ(pool.densest_block(), kInvalidBlock);
  pool.add(9, particle(0));
  pool.add(2, particle(1));
  pool.add(2, particle(2));
  pool.add(5, particle(3));
  pool.add(5, particle(4));
  EXPECT_EQ(pool.densest_block(), 2);
}

TEST(ParticlePool, CensusIsSortedByBlock) {
  ParticlePool pool;
  pool.add(9, particle(0));
  pool.add(1, particle(1));
  pool.add(9, particle(2));
  const auto census = pool.census();
  ASSERT_EQ(census.size(), 2u);
  EXPECT_EQ(census[0], (std::pair<BlockId, std::uint32_t>{1, 1}));
  EXPECT_EQ(census[1], (std::pair<BlockId, std::uint32_t>{9, 2}));
}

TEST(ParticlePool, DrainBlockRemovesAll) {
  ParticlePool pool;
  for (std::uint32_t i = 0; i < 5; ++i) pool.add(4, particle(i));
  pool.add(6, particle(99));
  const auto drained = pool.drain_block(4);
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.drain_block(4).empty());
}

TEST(ParticlePool, FirstBlockWhereRespectsPredicate) {
  ParticlePool pool;
  pool.add(2, particle(0));
  pool.add(5, particle(1));
  EXPECT_EQ(pool.first_block_where([](BlockId b) { return b == 5; }), 5);
  EXPECT_EQ(pool.first_block_where([](BlockId) { return true; }), 2);
  EXPECT_EQ(pool.first_block_where([](BlockId) { return false; }),
            kInvalidBlock);
}

TEST(ResidentBytes, OverheadPlusGeometry) {
  MachineModel m;
  m.particle_overhead_bytes = 1000;
  EXPECT_EQ(resident_particle_bytes(particle(0, 1), m),
            1000 + sizeof(Vec3));
  EXPECT_EQ(resident_particle_bytes(particle(0, 100), m),
            1000 + 100 * sizeof(Vec3));
}

TEST(MakeParticles, SplitsValidAndRejected) {
  const BlockDecomposition decomp({{0, 0, 0}, {1, 1, 1}}, 2, 2, 2);
  const std::vector<Vec3> seeds{
      {0.5, 0.5, 0.5}, {2, 2, 2}, {0.1, 0.1, 0.1}, {-1, 0, 0}};
  std::vector<Particle> rejected;
  const auto valid = make_particles(decomp, seeds, rejected);
  ASSERT_EQ(valid.size(), 2u);
  ASSERT_EQ(rejected.size(), 2u);
  // Ids are seed indices, preserved across the split.
  EXPECT_EQ(valid[0].id, 0u);
  EXPECT_EQ(valid[1].id, 2u);
  EXPECT_EQ(rejected[0].id, 1u);
  EXPECT_EQ(rejected[1].id, 3u);
  for (const Particle& p : rejected) {
    EXPECT_EQ(p.status, ParticleStatus::kExitedDomain);
  }
  for (const Particle& p : valid) {
    EXPECT_EQ(p.status, ParticleStatus::kActive);
  }
}

}  // namespace
}  // namespace sf
