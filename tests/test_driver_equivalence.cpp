// Cross-algorithm equivalence: the paper's three parallelization
// strategies are *schedules* of the same numerical computation, so all
// three must produce bit-identical terminated particles for the same
// dataset and seeds — across rank counts and cache pressures.

#include <gtest/gtest.h>

#include "algorithms/driver.hpp"
#include "test_support.hpp"

namespace sf {
namespace {

using sf::testing::test_config;

void expect_same_particles(const std::vector<Particle>& a,
                           const std::vector<Particle>& b,
                           const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " i=" << i;
    EXPECT_EQ(a[i].status, b[i].status) << label << " i=" << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.x, b[i].pos.x) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.y, b[i].pos.y) << label << " i=" << i;
    EXPECT_EQ(a[i].pos.z, b[i].pos.z) << label << " i=" << i;
    EXPECT_EQ(a[i].time, b[i].time) << label << " i=" << i;
  }
}

class AlgorithmEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(AlgorithmEquivalence, AllThreeAgreeBitForBit) {
  const auto [ranks, cache] = GetParam();
  auto w = sf::testing::abc_world(2);
  Rng rng(123);
  auto seeds = random_seeds(w.dataset->bounds(), 30, rng);
  // Include out-of-domain and boundary seeds.
  seeds.push_back({-5, 0, 0});
  seeds.push_back(w.dataset->bounds().lo);

  auto make = [&](Algorithm a) {
    auto cfg = test_config(a, ranks);
    cfg.runtime.cache_blocks = cache;
    cfg.limits.max_steps = 600;
    cfg.limits.max_time = 10.0;
    return run_experiment(cfg, w.decomp(), *w.source, seeds);
  };

  const RunMetrics st = make(Algorithm::kStaticAllocation);
  const RunMetrics lod = make(Algorithm::kLoadOnDemand);
  const RunMetrics hy = make(Algorithm::kHybridMasterSlave);
  ASSERT_FALSE(st.failed_oom);
  ASSERT_FALSE(lod.failed_oom);
  ASSERT_FALSE(hy.failed_oom);

  expect_same_particles(st.particles, lod.particles, "static-vs-lod");
  expect_same_particles(st.particles, hy.particles, "static-vs-hybrid");
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndCaches, AlgorithmEquivalence,
    ::testing::Values(std::tuple{2, 16ul}, std::tuple{4, 16ul},
                      std::tuple{7, 16ul}, std::tuple{4, 2ul},
                      std::tuple{8, 4ul}));

TEST(DriverEquivalence, RankCountDoesNotChangeResults) {
  auto w = sf::testing::rotor_world(3);
  Rng rng(77);
  const auto seeds = random_seeds(w.dataset->bounds(), 25, rng);

  std::vector<Particle> reference;
  for (const int ranks : {1, 2, 5, 9}) {
    auto cfg = test_config(Algorithm::kStaticAllocation, ranks);
    cfg.limits.max_steps = 500;
    const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
    ASSERT_FALSE(m.failed_oom);
    if (reference.empty()) {
      reference = m.particles;
    } else {
      expect_same_particles(reference, m.particles, "rank-sweep");
    }
  }
}

TEST(DriverEquivalence, MatchesSerialTraceAll) {
  // The parallel algorithms must agree with the serial public API.
  auto w = sf::testing::abc_world(2);
  Rng rng(55);
  const auto seeds = random_seeds(w.dataset->bounds(), 15, rng);

  auto cfg = test_config(Algorithm::kLoadOnDemand, 3);
  cfg.limits.max_steps = 400;
  cfg.limits.max_time = 8.0;
  const RunMetrics m = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(m.failed_oom);

  const auto serial =
      trace_all(*w.dataset, seeds, cfg.integrator, cfg.limits);
  expect_same_particles(m.particles, serial, "parallel-vs-serial");
}

TEST(DriverEquivalence, RunsAreDeterministic) {
  auto w = sf::testing::rotor_world(2);
  Rng rng(99);
  const auto seeds = random_seeds(w.dataset->bounds(), 20, rng);
  const auto cfg = test_config(Algorithm::kHybridMasterSlave, 5);

  const RunMetrics a = run_experiment(cfg, w.decomp(), *w.source, seeds);
  const RunMetrics b = run_experiment(cfg, w.decomp(), *w.source, seeds);
  ASSERT_FALSE(a.failed_oom);
  EXPECT_EQ(a.wall_clock, b.wall_clock);
  EXPECT_EQ(a.total_messages(), b.total_messages());
  EXPECT_EQ(a.total_blocks_loaded(), b.total_blocks_loaded());
  expect_same_particles(a.particles, b.particles, "repeat");
}

TEST(DriverEquivalence, AlgorithmNames) {
  EXPECT_STREQ(to_string(Algorithm::kStaticAllocation),
               "static-allocation");
  EXPECT_STREQ(to_string(Algorithm::kLoadOnDemand), "load-on-demand");
  EXPECT_STREQ(to_string(Algorithm::kHybridMasterSlave),
               "hybrid-master-slave");
}

}  // namespace
}  // namespace sf
